#include "net/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/simulator.hpp"

using namespace p2panon::net;
namespace sim = p2panon::sim;

namespace {

OverlayConfig small_config(double malicious = 0.0) {
  OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.malicious_fraction = malicious;
  return cfg;
}

}  // namespace

TEST(Overlay, NeighborSetsHaveConfiguredDegree) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(1));
  for (NodeId id = 0; id < o.size(); ++id) {
    EXPECT_EQ(o.neighbors(id).size(), 5u);
  }
}

TEST(Overlay, NeighborsDistinctAndNotSelf) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(2));
  for (NodeId id = 0; id < o.size(); ++id) {
    std::set<NodeId> uniq;
    for (NodeId nb : o.neighbors(id)) {
      EXPECT_NE(nb, id);
      EXPECT_LT(nb, o.size());
      uniq.insert(nb);
    }
    EXPECT_EQ(uniq.size(), o.neighbors(id).size());
  }
}

TEST(Overlay, MaliciousFractionApplied) {
  sim::Simulator s;
  Overlay o(small_config(0.5), s, sim::rng::Stream(3));
  EXPECT_EQ(o.malicious_nodes().size(), 20u);
  EXPECT_EQ(o.good_nodes().size(), 20u);
}

TEST(Overlay, MaliciousFractionZeroAndOne) {
  sim::Simulator s1, s2;
  Overlay none(small_config(0.0), s1, sim::rng::Stream(4));
  EXPECT_TRUE(none.malicious_nodes().empty());
  Overlay all(small_config(1.0), s2, sim::rng::Stream(5));
  EXPECT_EQ(all.malicious_nodes().size(), all.size());
}

TEST(Overlay, AllNodesOfflineBeforeStart) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(6));
  EXPECT_TRUE(o.online_nodes().empty());
}

TEST(Overlay, NodesJoinAfterStart) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(7));
  o.start();
  s.run_until(sim::hours(2.0));
  EXPECT_FALSE(o.online_nodes().empty());
  EXPECT_GT(o.churn_events(), 0u);
}

TEST(Overlay, ChurnProducesLeavesAndRejoins) {
  sim::Simulator s;
  auto cfg = small_config();
  cfg.churn.session_median = sim::minutes(20.0);  // faster churn
  Overlay o(cfg, s, sim::rng::Stream(8));
  int joins = 0, leaves = 0;
  o.add_churn_observer([&](NodeId, bool online, sim::Time) { (online ? joins : leaves)++; });
  o.start();
  s.run_until(sim::hours(12.0));
  EXPECT_GT(joins, 40);   // rejoins happened
  EXPECT_GT(leaves, 10);
}

TEST(Overlay, TrueAvailabilityInUnitInterval) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(9));
  o.start();
  s.run_until(sim::hours(6.0));
  for (NodeId id = 0; id < o.size(); ++id) {
    const double a = o.true_availability(id);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Overlay, OnlineNeighborsSubsetOfNeighbors) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(10));
  o.start();
  s.run_until(sim::hours(1.0));
  for (NodeId id = 0; id < o.size(); ++id) {
    auto nbs = o.neighbors(id);
    for (NodeId nb : o.online_neighbors(id)) {
      EXPECT_TRUE(o.is_online(nb));
      EXPECT_NE(std::find(nbs.begin(), nbs.end(), nb), nbs.end());
    }
  }
}

TEST(Overlay, ForceOnlineBringsNodeBack) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(11));
  o.start();
  s.run_until(sim::hours(1.0));
  // Find any offline node (there is one early on) and force it online.
  for (NodeId id = 0; id < o.size(); ++id) {
    if (!o.is_online(id)) {
      o.force_online(id);
      EXPECT_TRUE(o.is_online(id));
      return;
    }
  }
  GTEST_SKIP() << "all nodes already online at probe time";
}

TEST(Overlay, MaliciousAlwaysOnlineStayOnline) {
  sim::Simulator s;
  auto cfg = small_config(0.3);
  cfg.malicious_always_online = true;
  cfg.churn.session_median = sim::minutes(15.0);
  Overlay o(cfg, s, sim::rng::Stream(12));
  o.start();
  s.run_until(sim::hours(24.0));
  for (NodeId id : o.malicious_nodes()) {
    EXPECT_TRUE(o.is_online(id)) << "availability attacker " << id << " went offline";
    EXPECT_NEAR(o.true_availability(id), 1.0, 1e-9);
  }
}

TEST(Overlay, DepartedNeighborsReplaced) {
  sim::Simulator s;
  auto cfg = small_config();
  cfg.churn.departure_probability = 0.5;  // departures happen fast
  cfg.churn.session_median = sim::minutes(10.0);
  Overlay o(cfg, s, sim::rng::Stream(13));
  int replacements = 0;
  o.add_neighbor_observer([&](NodeId s_, NodeId old_nb, NodeId fresh, sim::Time) {
    EXPECT_NE(old_nb, fresh);
    EXPECT_NE(fresh, s_);
    ++replacements;
  });
  o.start();
  s.run_until(sim::hours(24.0));
  EXPECT_GT(replacements, 0);
  // No surviving node keeps a departed neighbour (unless no candidate
  // existed, which cannot happen with 40 nodes and this horizon).
  for (NodeId id = 0; id < o.size(); ++id) {
    if (o.node(id).departed) continue;
    for (NodeId nb : o.neighbors(id)) {
      EXPECT_FALSE(o.node(nb).departed)
          << "node " << id << " still lists departed neighbour " << nb;
    }
  }
}

TEST(Overlay, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    Overlay o(small_config(0.2), s, sim::rng::Stream(seed));
    o.start();
    s.run_until(sim::hours(8.0));
    return std::make_tuple(o.churn_events(), o.online_nodes(), o.malicious_nodes());
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(std::get<0>(run(99)), 0u);
}

TEST(Overlay, ChurnEventsCounterConsistentWithObserver) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(14));
  std::uint64_t observed = 0;
  o.add_churn_observer([&](NodeId, bool, sim::Time) { ++observed; });
  o.start();
  s.run_until(sim::hours(4.0));
  EXPECT_EQ(observed, o.churn_events());
}

TEST(Overlay, CrashIsSilentButGroundTruthSeesIt) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(15));
  o.start();
  s.run_until(sim::hours(1.0));
  NodeId victim = kInvalidNode;
  for (NodeId id = 0; id < o.size(); ++id) {
    if (o.is_online(id)) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);

  int notifications = 0;
  o.add_churn_observer([&](NodeId, bool, sim::Time) { ++notifications; });
  ASSERT_TRUE(o.crash(victim));
  EXPECT_EQ(notifications, 0) << "a silent crash must not notify observers";
  EXPECT_FALSE(o.is_online(victim));
  EXPECT_TRUE(o.appears_online(victim)) << "nobody was told, so it still appears up";
  EXPECT_DOUBLE_EQ(o.node(victim).tracker.last_leave(), s.now());

  // Crashing again is a no-op; recovery rejoins visibly.
  EXPECT_FALSE(o.crash(victim));
  o.recover(victim);
  EXPECT_TRUE(o.is_online(victim));
  EXPECT_GT(notifications, 0) << "recovery is an announced join";
}

TEST(Overlay, ForceOfflineIsAnnounced) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(16));
  o.start();
  s.run_until(sim::hours(1.0));
  NodeId victim = kInvalidNode;
  for (NodeId id = 0; id < o.size(); ++id) {
    if (o.is_online(id)) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  int leaves = 0;
  o.add_churn_observer([&](NodeId, bool online, sim::Time) { leaves += online ? 0 : 1; });
  o.force_offline(victim);
  EXPECT_FALSE(o.is_online(victim));
  EXPECT_FALSE(o.appears_online(victim)) << "graceful leaves are visible immediately";
  EXPECT_EQ(leaves, 1);
}

TEST(Overlay, CrashedNodeSkipsItsPendingGracefulLeave) {
  sim::Simulator s;
  Overlay o(small_config(), s, sim::rng::Stream(17));
  o.start();
  s.run_until(sim::hours(1.0));
  NodeId victim = kInvalidNode;
  for (NodeId id = 0; id < o.size(); ++id) {
    if (o.is_online(id)) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  ASSERT_TRUE(o.crash(victim));
  o.recover(victim);
  // The pre-crash session's scheduled leave is stale (its leave epoch moved);
  // run far enough that it would have fired and check the node's state is
  // consistent: it can only go offline through announced churn now.
  bool crashed_state_seen = false;
  o.add_churn_observer([&](NodeId id, bool, sim::Time) {
    crashed_state_seen = crashed_state_seen || o.node(id).crashed;
  });
  s.run_until(s.now() + sim::hours(48.0));
  EXPECT_FALSE(crashed_state_seen);
  EXPECT_FALSE(o.node(victim).crashed);
}
