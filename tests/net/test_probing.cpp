#include "net/probing.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/overlay.hpp"
#include "sim/simulator.hpp"

using namespace p2panon::net;
namespace sim = p2panon::sim;

namespace {

OverlayConfig stable_config() {
  OverlayConfig cfg;
  cfg.node_count = 20;
  cfg.degree = 4;
  // Long sessions and no departures: nodes mostly stay online.
  cfg.churn.session_median = sim::hours(50.0);
  cfg.churn.session_min = sim::hours(40.0);
  cfg.churn.session_max = sim::hours(100.0);
  cfg.churn.departure_probability = 0.0;
  cfg.churn.join_interarrival_mean = sim::minutes(0.5);
  return cfg;
}

}  // namespace

TEST(Probing, EstimatesNormaliseToOne) {
  sim::Simulator s;
  Overlay o(stable_config(), s, sim::rng::Stream(1));
  ProbingEstimator probing(o, ProbingConfig{}, sim::rng::Stream(1).child("p"));
  o.start();
  s.run_until(sim::hours(4.0));
  for (NodeId id = 0; id < o.size(); ++id) {
    double total = 0.0;
    for (NodeId nb : o.neighbors(id)) total += probing.availability(id, nb);
    EXPECT_NEAR(total, 1.0, 1e-9) << "alpha_s must normalise over D(s)";
  }
}

TEST(Probing, UniformPriorBeforeObservations) {
  sim::Simulator s;
  Overlay o(stable_config(), s, sim::rng::Stream(2));
  ProbingEstimator probing(o, ProbingConfig{}, sim::rng::Stream(2).child("p"));
  // No simulation run: no probes yet.
  for (NodeId nb : o.neighbors(0)) {
    EXPECT_DOUBLE_EQ(probing.availability(0, nb), 1.0 / 4.0);
  }
}

TEST(Probing, ProbesAccumulateSessionTime) {
  sim::Simulator s;
  Overlay o(stable_config(), s, sim::rng::Stream(3));
  ProbingEstimator probing(o, ProbingConfig{sim::minutes(5.0)}, sim::rng::Stream(3).child("p"));
  o.start();
  s.run_until(sim::hours(8.0));
  EXPECT_GT(probing.probes_performed(), 0u);
  // With everyone long-lived, observed session times grow roughly with the
  // horizon.
  bool some_accumulation = false;
  for (NodeId id = 0; id < o.size() && !some_accumulation; ++id) {
    for (NodeId nb : o.neighbors(id)) {
      if (probing.observed_session_time(id, nb) > sim::hours(1.0)) {
        some_accumulation = true;
        break;
      }
    }
  }
  EXPECT_TRUE(some_accumulation);
}

TEST(Probing, StableNeighborsConvergeTowardUniform) {
  // With all neighbours equally long-lived, estimates approach 1/d.
  sim::Simulator s;
  Overlay o(stable_config(), s, sim::rng::Stream(4));
  ProbingEstimator probing(o, ProbingConfig{sim::minutes(5.0)}, sim::rng::Stream(4).child("p"));
  o.start();
  s.run_until(sim::hours(30.0));
  for (NodeId nb : o.neighbors(0)) {
    EXPECT_NEAR(probing.availability(0, nb), 0.25, 0.1);
  }
}

TEST(Probing, ChurningNeighborScoresLowerThanStableOne) {
  sim::Simulator s;
  OverlayConfig cfg;
  cfg.node_count = 30;
  cfg.degree = 6;
  cfg.churn.session_median = sim::minutes(30.0);  // real churn
  cfg.churn.session_min = sim::minutes(5.0);
  cfg.churn.session_max = sim::hours(8.0);
  cfg.churn.departure_probability = 0.0;
  cfg.churn.offline_gap_mean = sim::minutes(60.0);
  Overlay o(cfg, s, sim::rng::Stream(5));
  ProbingEstimator probing(o, ProbingConfig{sim::minutes(5.0)}, sim::rng::Stream(5).child("p"));
  o.start();
  s.run_until(sim::hours(48.0));

  // Compare estimated vs true availability rank correlation in aggregate:
  // the neighbour with the highest true availability should rarely have the
  // lowest estimate. Count agreements over all nodes.
  int agree = 0, total = 0;
  for (NodeId id = 0; id < o.size(); ++id) {
    if (!o.is_online(id)) continue;
    NodeId best_true = kInvalidNode, worst_true = kInvalidNode;
    double bt = -1, wt = 2;
    for (NodeId nb : o.neighbors(id)) {
      const double a = o.true_availability(nb);
      if (a > bt) {
        bt = a;
        best_true = nb;
      }
      if (a < wt) {
        wt = a;
        worst_true = nb;
      }
    }
    if (best_true == kInvalidNode || best_true == worst_true || bt - wt < 0.2) continue;
    ++total;
    if (probing.availability(id, best_true) >= probing.availability(id, worst_true)) ++agree;
  }
  if (total < 3) GTEST_SKIP() << "not enough contrast in availabilities";
  EXPECT_GT(static_cast<double>(agree) / total, 0.6)
      << "estimates should usually rank a stable neighbour above a churner";
}

TEST(Probing, OfflineNodeStopsProbing) {
  sim::Simulator s;
  OverlayConfig cfg = stable_config();
  cfg.node_count = 4;
  cfg.degree = 2;
  cfg.churn.session_min = sim::minutes(30.0);
  cfg.churn.session_median = sim::minutes(40.0);  // must stay < sqrt(min*max)
  cfg.churn.session_max = sim::minutes(60.0);
  cfg.churn.offline_gap_mean = sim::hours(100.0);  // leaves and stays away
  Overlay o(cfg, s, sim::rng::Stream(6));
  ProbingEstimator probing(o, ProbingConfig{sim::minutes(5.0)}, sim::rng::Stream(6).child("p"));
  o.start();
  s.run_until(sim::hours(2.0));
  const auto probes_at_2h = probing.probes_performed();
  s.run_until(sim::hours(20.0));
  // All nodes offline after ~1h sessions; probe count must stop growing.
  EXPECT_EQ(probing.probes_performed(), probes_at_2h);
}

TEST(Probing, EpochAdvancesWithProbesAndIsStableAcrossReads) {
  sim::Simulator s;
  Overlay o(stable_config(), s, sim::rng::Stream(8));
  ProbingEstimator probing(o, ProbingConfig{sim::minutes(5.0)}, sim::rng::Stream(8).child("p"));
  std::vector<std::uint64_t> before;
  for (NodeId id = 0; id < o.size(); ++id) before.push_back(probing.epoch(id));
  o.start();
  s.run_until(sim::hours(4.0));
  // Every node probed at least once in 4 hours, so every epoch moved.
  bool all_advanced = true;
  for (NodeId id = 0; id < o.size(); ++id) {
    if (probing.epoch(id) <= before[id]) all_advanced = false;
  }
  EXPECT_TRUE(all_advanced);
  // Reads never move the epoch: equal epochs must mean equal answers.
  const std::uint64_t e = probing.epoch(0);
  for (NodeId nb : o.neighbors(0)) (void)probing.availability(0, nb);
  EXPECT_EQ(probing.epoch(0), e);
}

TEST(Probing, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    sim::Simulator s;
    Overlay o(stable_config(), s, sim::rng::Stream(7));
    ProbingEstimator probing(o, ProbingConfig{}, sim::rng::Stream(7).child("p"));
    o.start();
    s.run_until(sim::hours(6.0));
    std::vector<double> snapshot;
    for (NodeId id = 0; id < o.size(); ++id) {
      for (NodeId nb : o.neighbors(id)) snapshot.push_back(probing.availability(id, nb));
    }
    return snapshot;
  };
  EXPECT_EQ(run(), run());
}

TEST(Probing, OracleFalseNegativesFreezeSessionTimes) {
  // An always-dead oracle (total probe false negatives) must stop session
  // time from accumulating — probes still run and bump epochs, but every
  // observation says "down", so estimates stay at the uniform prior.
  sim::Simulator s;
  Overlay o(stable_config(), s, sim::rng::Stream(5));
  ProbingEstimator probing(o, ProbingConfig{sim::minutes(5.0)}, sim::rng::Stream(5).child("p"));
  probing.set_probe_oracle([](NodeId, NodeId) { return false; });
  o.start();
  s.run_until(sim::hours(8.0));
  EXPECT_GT(probing.probes_performed(), 0u);
  for (NodeId id = 0; id < o.size(); ++id) {
    if (o.is_online(id)) {
      EXPECT_GT(probing.epoch(id), 0u);
    }
    for (NodeId nb : o.neighbors(id)) {
      EXPECT_DOUBLE_EQ(probing.observed_session_time(id, nb), 0.0);
    }
  }
  // Uniform prior survives: no observations ever accumulated.
  for (NodeId nb : o.neighbors(0)) {
    EXPECT_DOUBLE_EQ(probing.availability(0, nb), 1.0 / 4.0);
  }
}

TEST(Probing, TruthfulOracleMatchesNoOracleBitwise) {
  // An oracle that just relays ground truth must reproduce the oracle-free
  // estimator exactly (the fault-free baseline guarantee).
  auto run = [](bool with_oracle) {
    sim::Simulator s;
    auto o = std::make_unique<Overlay>(stable_config(), s, sim::rng::Stream(6));
    ProbingEstimator probing(*o, ProbingConfig{sim::minutes(5.0)},
                             sim::rng::Stream(6).child("p"));
    if (with_oracle) {
      probing.set_probe_oracle(
          [&o = *o](NodeId, NodeId target) { return o.is_online(target); });
    }
    o->start();
    s.run_until(sim::hours(8.0));
    std::vector<double> alphas;
    for (NodeId id = 0; id < o->size(); ++id) {
      for (NodeId nb : o->neighbors(id)) alphas.push_back(probing.availability(id, nb));
    }
    return alphas;
  };
  EXPECT_EQ(run(false), run(true));
}
