#include "net/churn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

using namespace p2panon::net;
namespace sim = p2panon::sim;

namespace {

ChurnConfig test_config() {
  ChurnConfig cfg;
  cfg.join_interarrival_mean = sim::minutes(1.0);
  cfg.session_median = sim::minutes(60.0);
  cfg.session_min = sim::minutes(5.0);
  cfg.session_max = sim::hours(24.0);
  cfg.offline_gap_mean = sim::minutes(30.0);
  cfg.departure_probability = 0.1;
  return cfg;
}

}  // namespace

TEST(ChurnProcess, SessionLengthsWithinBounds) {
  ChurnProcess churn(test_config(), sim::rng::Stream(1).child("c"));
  for (int i = 0; i < 20000; ++i) {
    const sim::Time s = churn.session_length();
    EXPECT_GE(s, sim::minutes(5.0));
    EXPECT_LE(s, sim::hours(24.0) + 1e-6);
  }
}

TEST(ChurnProcess, SessionMedianNearConfigured) {
  ChurnProcess churn(test_config(), sim::rng::Stream(2).child("c"));
  std::vector<double> sessions;
  const int n = 50001;
  sessions.reserve(n);
  for (int i = 0; i < n; ++i) sessions.push_back(churn.session_length());
  std::nth_element(sessions.begin(), sessions.begin() + n / 2, sessions.end());
  // Bounded Pareto truncation pulls the median slightly below the unbounded
  // target; allow 10%.
  EXPECT_NEAR(sessions[n / 2], sim::minutes(60.0), sim::minutes(6.0));
}

TEST(ChurnProcess, JoinGapsExponentialMean) {
  ChurnProcess churn(test_config(), sim::rng::Stream(3).child("c"));
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += churn.next_join_gap();
  EXPECT_NEAR(sum / n, sim::minutes(1.0), sim::minutes(0.05));
}

TEST(ChurnProcess, OfflineGapMean) {
  ChurnProcess churn(test_config(), sim::rng::Stream(4).child("c"));
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += churn.offline_gap();
  EXPECT_NEAR(sum / n, sim::minutes(30.0), sim::minutes(1.5));
}

TEST(ChurnProcess, DepartureFrequencyMatchesProbability) {
  ChurnProcess churn(test_config(), sim::rng::Stream(5).child("c"));
  int departures = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) departures += churn.is_final_departure() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(departures) / n, 0.1, 0.005);
}

TEST(ChurnProcess, DeterministicForSameStream) {
  ChurnProcess a(test_config(), sim::rng::Stream(6).child("c"));
  ChurnProcess b(test_config(), sim::rng::Stream(6).child("c"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.session_length(), b.session_length());
    EXPECT_DOUBLE_EQ(a.next_join_gap(), b.next_join_gap());
  }
}

TEST(AvailabilityTracker, NeverJoinedIsZero) {
  AvailabilityTracker t;
  EXPECT_FALSE(t.ever_joined());
  EXPECT_FALSE(t.online());
  EXPECT_DOUBLE_EQ(t.availability(100.0), 0.0);
}

TEST(AvailabilityTracker, AlwaysOnlineIsOne) {
  AvailabilityTracker t;
  t.on_join(0.0);
  EXPECT_TRUE(t.online());
  EXPECT_DOUBLE_EQ(t.availability(1000.0), 1.0);
}

TEST(AvailabilityTracker, HalfOnline) {
  AvailabilityTracker t;
  t.on_join(0.0);
  t.on_leave(50.0);
  t.on_join(100.0);
  // At t = 150: sessions = 50 + 50 = 100 of lifetime 150.
  EXPECT_NEAR(t.availability(150.0), 100.0 / 150.0, 1e-12);
}

TEST(AvailabilityTracker, OfflineLifetimeEndsAtLastLeave) {
  AvailabilityTracker t;
  t.on_join(0.0);
  t.on_leave(60.0);
  // Rhea et al.: lifetime runs to the final departure, so later queries
  // while offline do not dilute availability.
  EXPECT_DOUBLE_EQ(t.availability(1000.0), 1.0);
}

TEST(AvailabilityTracker, SessionTimeAccumulates) {
  AvailabilityTracker t;
  t.on_join(10.0);
  t.on_leave(30.0);
  t.on_join(50.0);
  EXPECT_DOUBLE_EQ(t.total_session_time(70.0), 40.0);
}

TEST(AvailabilityTracker, AvailabilityBoundedInUnitInterval) {
  AvailabilityTracker t;
  t.on_join(5.0);
  t.on_leave(10.0);
  t.on_join(20.0);
  t.on_leave(25.0);
  for (double now : {26.0, 50.0, 500.0}) {
    const double a = t.availability(now);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(AvailabilityTracker, JoinAtQueryInstant) {
  AvailabilityTracker t;
  t.on_join(42.0);
  const double a = t.availability(42.0);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

TEST(AvailabilityTracker, DoubleJoinIsIdempotent) {
  AvailabilityTracker t;
  t.on_join(10.0);
  t.on_join(20.0);  // out-of-order driving: already online, must be a no-op
  EXPECT_TRUE(t.online());
  EXPECT_DOUBLE_EQ(t.total_session_time(30.0), 20.0);
  EXPECT_DOUBLE_EQ(t.availability(30.0), 1.0);
}

TEST(AvailabilityTracker, LeaveBeforeJoinIgnored) {
  AvailabilityTracker t;
  t.on_leave(5.0);  // never joined: must be a no-op, not an assert
  EXPECT_FALSE(t.ever_joined());
  EXPECT_FALSE(t.online());
  EXPECT_DOUBLE_EQ(t.availability(10.0), 0.0);
  EXPECT_DOUBLE_EQ(t.last_leave(), -1.0);
}

TEST(AvailabilityTracker, LeaveAtTimeZeroIsDefined) {
  AvailabilityTracker t;
  t.on_join(0.0);
  t.on_leave(0.0);  // zero-length session at time zero: lifetime is 0
  const double a = t.availability(0.0);
  EXPECT_FALSE(std::isnan(a));
  EXPECT_DOUBLE_EQ(a, 0.0);
  EXPECT_DOUBLE_EQ(t.last_leave(), 0.0);
}

TEST(AvailabilityTracker, DoubleLeaveKeepsFirstLeaveTime) {
  AvailabilityTracker t;
  t.on_join(0.0);
  t.on_leave(10.0);
  t.on_leave(20.0);  // already offline: no-op
  EXPECT_DOUBLE_EQ(t.last_leave(), 10.0);
  EXPECT_DOUBLE_EQ(t.total_session_time(30.0), 10.0);
}
