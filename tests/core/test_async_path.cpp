#include "core/async_path.hpp"

#include <gtest/gtest.h>

#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class AsyncPathTest : public ::testing::Test {
 protected:
  void SetUp() override { world.warmup(); }

  AsyncResult establish_one(std::uint32_t conn = 1, AsyncConfig cfg = {}) {
    PathBuilder builder(world.overlay, world.quality);
    AsyncConnectionRunner runner(world.simulator, world.overlay, builder, cfg);
    UtilityModelIRouting strategy;
    StrategyAssignment assign(world.overlay, strategy);
    AsyncResult captured;
    bool done = false;
    runner.establish(1, conn, 0, 19, Contract{}, assign, world.root.child("async", conn),
                     [&](const AsyncResult& r) {
                       captured = r;
                       done = true;
                     });
    world.simulator.run_until(world.simulator.now() + sim::hours(1.0));
    EXPECT_TRUE(done) << "establishment never completed";
    return captured;
  }

  p2ptest::StableWorld world{61};
};

}  // namespace

TEST_F(AsyncPathTest, StableWorldEstablishesFirstAttempt) {
  const AsyncResult r = establish_one();
  EXPECT_TRUE(r.established);
  EXPECT_EQ(r.attempts, 1u);
  ASSERT_GE(r.path.nodes.size(), 2u);
  EXPECT_EQ(r.path.nodes.front(), 0u);
  EXPECT_EQ(r.path.nodes.back(), 19u);
}

TEST_F(AsyncPathTest, SetupTimeIsRoundTripLatency) {
  const AsyncResult r = establish_one(2);
  ASSERT_TRUE(r.established);
  // Forward propagation + reverse confirmation over the same links.
  const double one_way = world.overlay.links().path_latency(r.path.nodes);
  EXPECT_NEAR(r.setup_time, 2.0 * one_way, 1e-9);
}

TEST_F(AsyncPathTest, PathStructureMatchesBuilderInvariants) {
  const AsyncResult r = establish_one(3);
  ASSERT_TRUE(r.established);
  EXPECT_EQ(r.path.edge_qualities.size(), r.path.nodes.size() - 1);
  EXPECT_DOUBLE_EQ(r.path.edge_qualities.back(), 1.0);
  for (std::size_t i = 0; i + 2 < r.path.nodes.size(); ++i) {
    const auto nbs = world.overlay.neighbors(r.path.nodes[i]);
    EXPECT_TRUE(std::find(nbs.begin(), nbs.end(), r.path.nodes[i + 1]) != nbs.end());
  }
}

TEST_F(AsyncPathTest, CallbackFiresExactlyOnce) {
  PathBuilder builder(world.overlay, world.quality);
  AsyncConnectionRunner runner(world.simulator, world.overlay, builder);
  UtilityModelIRouting strategy;
  StrategyAssignment assign(world.overlay, strategy);
  int fired = 0;
  runner.establish(1, 9, 0, 19, Contract{}, assign, world.root.child("once"),
                   [&](const AsyncResult&) { ++fired; });
  world.simulator.run_until(world.simulator.now() + sim::hours(2.0));
  EXPECT_EQ(fired, 1);
}

TEST(AsyncPathChurn, ReformationsHappenUnderHeavyChurn) {
  // Violent churn: sessions of a few minutes, so formations frequently lose
  // a holder mid-flight. Slow links stretch the formation window.
  sim::rng::Stream root(8);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 30;
  cfg.degree = 5;
  cfg.churn.session_min = sim::minutes(1.0);
  cfg.churn.session_median = sim::minutes(3.0);
  cfg.churn.session_max = sim::minutes(30.0);
  cfg.churn.offline_gap_mean = sim::minutes(2.0);
  cfg.churn.departure_probability = 0.0;
  cfg.link.propagation_delay = 20.0;  // slow links: setup spans churn events
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::AsyncConnectionRunner runner(simulator, overlay, builder);
  core::RandomRouting strategy;
  core::StrategyAssignment assign(overlay, strategy);

  overlay.start();
  simulator.run_until(sim::minutes(30.0));

  std::uint32_t total_attempts = 0;
  int completed = 0;
  for (std::uint32_t c = 1; c <= 25; ++c) {
    overlay.force_online(0);
    overlay.force_online(29);
    bool done = false;
    core::AsyncResult out;
    runner.establish(1, c, 0, 29, core::Contract{}, assign, root.child("est", c),
                     [&](const core::AsyncResult& r) {
                       out = r;
                       done = true;
                     });
    // Worst case is bounded (16 attempts with capped jittered backoff) but
    // can exceed one window on slow links; drive until resolution.
    for (int windows = 0; windows < 8 && !done; ++windows) {
      simulator.run_until(simulator.now() + sim::minutes(30.0));
    }
    ASSERT_TRUE(done) << "connection " << c << " never resolved";
    total_attempts += out.attempts;
    completed += out.established ? 1 : 0;
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(total_attempts, 25u) << "heavy churn should force at least some reformations";
}

TEST(AsyncPathChurn, ExhaustedAttemptsReportFailure) {
  // A world where everyone except the endpoints is permanently offline and
  // links are so slow the endpoints churn out mid-attempt is hard to build
  // deterministically; instead cap attempts at 1 under violent churn and
  // slow links, and check that failures are reported as such.
  sim::rng::Stream root(9);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 20;
  cfg.degree = 4;
  cfg.churn.session_min = sim::minutes(1.0);
  cfg.churn.session_median = sim::minutes(2.0);
  cfg.churn.session_max = sim::minutes(10.0);
  cfg.churn.offline_gap_mean = sim::minutes(5.0);
  cfg.link.propagation_delay = 60.0;  // one hop takes a minute
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::AsyncConfig acfg;
  acfg.max_attempts = 1;
  core::AsyncConnectionRunner runner(simulator, overlay, builder, acfg);
  core::RandomRouting strategy;
  core::StrategyAssignment assign(overlay, strategy);

  overlay.start();
  simulator.run_until(sim::minutes(30.0));

  int failures = 0, resolved = 0;
  for (std::uint32_t c = 1; c <= 20; ++c) {
    overlay.force_online(0);
    overlay.force_online(19);
    runner.establish(1, c, 0, 19, core::Contract{}, assign, root.child("est", c),
                     [&](const core::AsyncResult& r) {
                       ++resolved;
                       if (!r.established) {
                         ++failures;
                         EXPECT_EQ(r.attempts, 1u);
                       }
                     });
    simulator.run_until(simulator.now() + sim::minutes(20.0));
  }
  simulator.run_until(simulator.now() + sim::hours(1.0));  // drain stragglers
  EXPECT_EQ(resolved, 20);
  EXPECT_GT(failures, 0) << "minute-long hops under 2-minute sessions must fail sometimes";
}
