#include "core/spne_routing.hpp"

#include <gtest/gtest.h>

#include "core/incentive.hpp"
#include "core/utility.hpp"
#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class SpneRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world.warmup();
    ctx = std::make_unique<RoutingContext>(
        RoutingContext{world.overlay, world.quality, Contract{}, 2, 3, kResponder});
  }

  static constexpr NodeId kResponder = 19;
  p2ptest::StableWorld world{41};
  std::unique_ptr<RoutingContext> ctx;
};

}  // namespace

TEST_F(SpneRoutingTest, LiveGameIsSubgamePerfect) {
  const game::PathGameSpec spec = SpneRouting::make_spec(*ctx);
  const game::BackwardInductionSolver solver(spec, 3);
  EXPECT_TRUE(solver.verify_subgame_perfection());
}

TEST_F(SpneRoutingTest, ChoiceComesFromCandidates) {
  SpneRouting routing(3);
  const auto candidates = world.overlay.online_neighbors(0);
  ASSERT_FALSE(candidates.empty());
  auto stream = world.root.child("s");
  const HopChoice c = routing.choose(*ctx, 0, net::kInvalidNode, candidates, stream);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), c.next), candidates.end());
  EXPECT_EQ(routing.name(), "spne");
}

TEST_F(SpneRoutingTest, Deterministic) {
  SpneRouting routing(3);
  const auto candidates = world.overlay.online_neighbors(0);
  auto s1 = world.root.child("a"), s2 = world.root.child("b");
  EXPECT_EQ(routing.choose(*ctx, 0, net::kInvalidNode, candidates, s1).next,
            routing.choose(*ctx, 0, net::kInvalidNode, candidates, s2).next);
}

TEST_F(SpneRoutingTest, ZeroStagesDelivers) {
  // With no forwarding stages, the only rational move is the best immediate
  // edge; if the responder is a candidate it wins (quality 1).
  SpneRouting routing(0);
  std::vector<NodeId> candidates = world.overlay.online_neighbors(0);
  candidates.push_back(kResponder);
  auto stream = world.root.child("z");
  const HopChoice c = routing.choose(*ctx, 0, net::kInvalidNode, candidates, stream);
  EXPECT_EQ(c.next, kResponder);
}

TEST_F(SpneRoutingTest, AgreesWithLookaheadWhenHistoryIsEmpty) {
  // With no history, selectivity is 0 regardless of predecessor, so the
  // stage-game quality equals the lookahead quality and the two Model-II
  // realisations should usually coincide. (They may differ when the
  // lookahead's no-revisit context matters; assert agreement on fresh
  // contexts only.)
  SpneRouting spne(2);
  UtilityModelIIRouting lookahead(2);
  auto stream = world.root.child("agree");
  int agree = 0, total = 0;
  for (NodeId self = 0; self < world.overlay.size(); ++self) {
    if (self == kResponder || !world.overlay.is_online(self)) continue;
    const auto candidates = world.overlay.online_neighbors(self);
    if (candidates.empty()) continue;
    ++total;
    const auto a = spne.choose(*ctx, self, net::kInvalidNode, candidates, stream);
    const auto b = lookahead.choose(*ctx, self, net::kInvalidNode, candidates, stream);
    if (a.next == b.next) ++agree;
  }
  ASSERT_GT(total, 5);
  EXPECT_GT(static_cast<double>(agree) / total, 0.6);
}

TEST_F(SpneRoutingTest, WorksInsideConnectionSession) {
  const auto strategy = make_strategy(StrategyKind::kSpne, 3);
  StrategyAssignment assign(world.overlay, *strategy);
  PathBuilder builder(world.overlay, world.quality);
  PayoffLedger ledger(world.overlay.size());
  ConnectionSetSession session(2, 0, kResponder, Contract{});
  auto stream = world.root.child("sess");
  for (std::uint32_t k = 0; k < 10; ++k) {
    const BuiltPath& p =
        session.run_connection(builder, world.history, assign, ledger, world.overlay, stream);
    EXPECT_EQ(p.responder(), kResponder);
  }
  EXPECT_EQ(session.connections_run(), 10u);
  EXPECT_GT(session.path_quality(), 0.0);
}

TEST_F(SpneRoutingTest, ShrinkForwarderSetVsRandom) {
  auto run_kind = [&](StrategyKind kind, const char* tag) {
    const auto strategy = make_strategy(kind, 3);
    StrategyAssignment assign(world.overlay, *strategy);
    HistoryStore fresh(world.overlay.size());
    EdgeQualityEvaluator quality(world.probing, fresh, QualityWeights{});
    PathBuilder builder(world.overlay, quality);
    PayoffLedger ledger(world.overlay.size());
    ConnectionSetSession session(2, 0, kResponder, Contract{});
    auto stream = world.root.child(tag);
    for (std::uint32_t k = 0; k < 20; ++k) {
      session.run_connection(builder, fresh, assign, ledger, world.overlay, stream);
    }
    return session.forwarder_set().size();
  };
  EXPECT_LT(run_kind(StrategyKind::kSpne, "spne"), run_kind(StrategyKind::kRandom, "rand"));
}
