#include "core/game.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace p2panon::core::game;
using p2panon::net::NodeId;

// ---------------------------------------------------------------------------
// Propositions.
// ---------------------------------------------------------------------------

TEST(Propositions, Prop2ThresholdFormula) {
  // P_f > C_p*N/(L*k) + C_t with C_p=10, N=40, L=4, k=20, C_t=1:
  // threshold = 10*40/80 + 1 = 6.
  EXPECT_DOUBLE_EQ(prop2_participation_threshold(10.0, 1.0, 40, 4.0, 20), 6.0);
  EXPECT_TRUE(prop2_induces_participation(6.01, 10.0, 1.0, 40, 4.0, 20));
  EXPECT_FALSE(prop2_induces_participation(6.0, 10.0, 1.0, 40, 4.0, 20));
}

TEST(Propositions, Prop2ThresholdDropsWithMoreConnections) {
  EXPECT_GT(prop2_participation_threshold(10.0, 1.0, 40, 4.0, 5),
            prop2_participation_threshold(10.0, 1.0, 40, 4.0, 50));
}

TEST(Propositions, Prop3DominantCondition) {
  EXPECT_TRUE(prop3_forwarding_dominant(75.0, 10.0, 1.0));
  EXPECT_FALSE(prop3_forwarding_dominant(11.0, 10.0, 1.0));
  EXPECT_FALSE(prop3_forwarding_dominant(10.0, 10.0, 0.0));
}

// ---------------------------------------------------------------------------
// Backward induction on hand-built path games.
// ---------------------------------------------------------------------------

namespace {

/// Line graph 0 - 1 - 2 - 3(R) with good interior edges: SPNE should route
/// along the line rather than deliver early when routing benefit dominates.
PathGameSpec line_game(double p_r, double interior_quality = 0.9) {
  PathGameSpec spec;
  spec.node_count = 4;
  spec.responder = 3;
  spec.candidates = [](NodeId v) -> std::vector<NodeId> {
    switch (v) {
      case 0: return {1};
      case 1: return {0, 2};
      case 2: return {1};
      default: return {};
    }
  };
  spec.edge_quality = [interior_quality](NodeId, NodeId) { return interior_quality; };
  spec.forwarding_benefit = 75.0;
  spec.routing_benefit = p_r;
  spec.cost = [](NodeId, NodeId) { return 11.0; };
  return spec;
}

}  // namespace

TEST(BackwardInduction, SubgamePerfectionHoldsByConstruction) {
  const PathGameSpec spec = line_game(150.0);
  BackwardInductionSolver solver(spec, 3);
  EXPECT_TRUE(solver.verify_subgame_perfection());
}

TEST(BackwardInduction, ZeroStagesForcesDelivery) {
  const PathGameSpec spec = line_game(150.0);
  BackwardInductionSolver solver(spec, 0);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(solver.decision(v, 0).next, spec.responder);
    EXPECT_DOUBLE_EQ(solver.decision(v, 0).onward_quality, 1.0);
  }
}

TEST(BackwardInduction, HighRoutingBenefitFollowsQualityPath) {
  // Forward-progress edges are good (0.9), back edges bad (0.1): the SPNE
  // path walks the line 0 -> 1 -> 2 -> R rather than oscillating.
  PathGameSpec spec = line_game(150.0);
  // Distinct forward qualities and worthless back edges, so no subgame ties.
  spec.edge_quality = [](NodeId i, NodeId j) {
    if (j <= i) return 0.0;
    return i == 0 ? 0.8 : 0.9;
  };
  BackwardInductionSolver solver(spec, 3);
  EXPECT_TRUE(solver.verify_subgame_perfection());
  const auto path = solver.equilibrium_path(0);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(BackwardInduction, ExpensiveInteriorDeliversDirect) {
  // Interior forwarding costs far more than the routing benefit it could
  // earn: delivering straight to the responder is every mover's best
  // response, so the equilibrium path is direct.
  PathGameSpec spec = line_game(150.0, 0.9);
  spec.cost = [&spec](NodeId, NodeId j) {
    return j == spec.responder ? 11.0 : 1.0e6;
  };
  BackwardInductionSolver solver(spec, 3);
  EXPECT_TRUE(solver.verify_subgame_perfection());
  const auto path = solver.equilibrium_path(0);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 3}));
}

TEST(BackwardInduction, EquilibriumPathTerminates) {
  // Cycle graph 0 <-> 1; solver must still terminate via stage exhaustion.
  PathGameSpec spec;
  spec.node_count = 3;
  spec.responder = 2;
  spec.candidates = [](NodeId v) -> std::vector<NodeId> {
    return v == 0 ? std::vector<NodeId>{1} : std::vector<NodeId>{0};
  };
  spec.edge_quality = [](NodeId, NodeId) { return 0.99; };
  spec.forwarding_benefit = 10.0;
  spec.routing_benefit = 1000.0;
  spec.cost = [](NodeId, NodeId) { return 1.0; };
  BackwardInductionSolver solver(spec, 4);
  const auto path = solver.equilibrium_path(0);
  EXPECT_EQ(path.back(), 2u);
  EXPECT_LE(path.size(), 6u);  // at most `stages` forwards + delivery
}

TEST(BackwardInduction, OnwardQualityMonotoneInStages) {
  const PathGameSpec spec = line_game(150.0, 0.9);
  BackwardInductionSolver solver(spec, 4);
  double prev = 0.0;
  for (std::uint32_t s = 0; s <= 4; ++s) {
    const double q = solver.decision(0, s).onward_quality;
    EXPECT_GE(q, prev - 1e-12);
    prev = q;
  }
}

// ---------------------------------------------------------------------------
// Normal-form game machinery.
// ---------------------------------------------------------------------------

namespace {

/// Prisoner's dilemma: action 0 = cooperate, 1 = defect.
NormalFormGame prisoners_dilemma() {
  return NormalFormGame({2, 2}, [](std::size_t player, const NormalFormGame::Profile& p) {
    static constexpr double payoff[2][2][2] = {
        // [my action][their action] -> my payoff
        {{3, 0}, {5, 1}},  // player 0 view handled below
        {{3, 0}, {5, 1}},
    };
    const std::size_t me = p[player];
    const std::size_t other = p[1 - player];
    return payoff[player][me][other];
  });
}

}  // namespace

TEST(NormalFormGame, PrisonersDilemmaNash) {
  const auto game = prisoners_dilemma();
  const auto equilibria = game.pure_nash_equilibria();
  ASSERT_EQ(equilibria.size(), 1u);
  EXPECT_EQ(equilibria[0], (NormalFormGame::Profile{1, 1}));  // defect-defect
}

TEST(NormalFormGame, DefectIsDominantInPd) {
  const auto game = prisoners_dilemma();
  EXPECT_TRUE(game.is_dominant_action(0, 1));
  EXPECT_TRUE(game.is_dominant_action(1, 1));
  EXPECT_FALSE(game.is_dominant_action(0, 0));
}

TEST(NormalFormGame, BestResponseDynamicsReachesNash) {
  const auto game = prisoners_dilemma();
  const auto fixed = game.best_response_dynamics({0, 0});
  ASSERT_TRUE(fixed.has_value());
  EXPECT_TRUE(game.is_nash(*fixed));
  EXPECT_EQ(*fixed, (NormalFormGame::Profile{1, 1}));
}

TEST(NormalFormGame, CoordinationGameHasTwoEquilibria) {
  NormalFormGame game({2, 2}, [](std::size_t, const NormalFormGame::Profile& p) {
    return p[0] == p[1] ? 1.0 : 0.0;
  });
  EXPECT_EQ(game.pure_nash_equilibria().size(), 2u);
}

TEST(NormalFormGame, MatchingPenniesHasNoPureNash) {
  NormalFormGame game({2, 2}, [](std::size_t player, const NormalFormGame::Profile& p) {
    const bool match = p[0] == p[1];
    return (player == 0) == match ? 1.0 : -1.0;
  });
  EXPECT_TRUE(game.pure_nash_equilibria().empty());
  EXPECT_FALSE(game.best_response_dynamics({0, 0}, 50).has_value());
}

TEST(NormalFormGame, EnumerationGuardThrows) {
  NormalFormGame game(std::vector<std::size_t>(40, 3),
                      [](std::size_t, const NormalFormGame::Profile&) { return 0.0; });
  EXPECT_THROW(game.pure_nash_equilibria(1000), std::length_error);
}

// ---------------------------------------------------------------------------
// Forwarding meta-game.
// ---------------------------------------------------------------------------

TEST(MetaGame, AllNonRandomIsNash) {
  const auto game = make_forwarding_metagame(MetaGameParams{});
  NormalFormGame::Profile all_nonrandom(5, static_cast<std::size_t>(MetaAction::kNonRandom));
  EXPECT_TRUE(game.is_nash(all_nonrandom));
}

TEST(MetaGame, NonRandomBeatsRandomUnilaterally) {
  const auto game = make_forwarding_metagame(MetaGameParams{});
  NormalFormGame::Profile profile(5, static_cast<std::size_t>(MetaAction::kNonRandom));
  const double good = game.payoff(2, profile);
  profile[2] = static_cast<std::size_t>(MetaAction::kRandom);
  EXPECT_LT(game.payoff(2, profile), good);
}

TEST(MetaGame, ParticipationBeatsAbstainUnderGenerousBenefit) {
  const auto game = make_forwarding_metagame(MetaGameParams{});
  NormalFormGame::Profile profile(5, static_cast<std::size_t>(MetaAction::kNonRandom));
  profile[0] = static_cast<std::size_t>(MetaAction::kAbstain);
  const double abstain = game.payoff(0, profile);
  profile[0] = static_cast<std::size_t>(MetaAction::kNonRandom);
  EXPECT_GT(game.payoff(0, profile), abstain);
  EXPECT_DOUBLE_EQ(abstain, 0.0);
}

TEST(MetaGame, BestResponseConvergesToAllNonRandom) {
  const auto game = make_forwarding_metagame(MetaGameParams{});
  const auto fixed = game.best_response_dynamics(
      NormalFormGame::Profile(5, static_cast<std::size_t>(MetaAction::kAbstain)));
  ASSERT_TRUE(fixed.has_value());
  for (std::size_t a : *fixed) {
    EXPECT_EQ(a, static_cast<std::size_t>(MetaAction::kNonRandom));
  }
}

TEST(MetaGame, TinyBenefitMakesAbstainNash) {
  MetaGameParams params;
  params.p_f = 0.001;
  params.p_r = 0.0;
  params.c_p = 1000.0;  // participation cannot pay for itself
  const auto game = make_forwarding_metagame(params);
  NormalFormGame::Profile all_abstain(5, static_cast<std::size_t>(MetaAction::kAbstain));
  EXPECT_TRUE(game.is_nash(all_abstain));
}
