#include "core/incentive.hpp"

#include <gtest/gtest.h>

#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class IncentiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world.warmup();
    auto key_stream = world.root.child("keys");
    for (NodeId id = 0; id < world.overlay.size(); ++id) {
      bank.open_account(id, payment::from_credits(1.0e7), key_stream.next_u64());
    }
  }

  /// Run k connections and settle; returns the session for inspection.
  std::unique_ptr<ConnectionSetSession> run_set(StrategyKind kind, std::uint32_t k,
                                                PayoffLedger& ledger, Contract contract = {}) {
    auto session = std::make_unique<ConnectionSetSession>(kPair, kInitiator, kResponder,
                                                          contract);
    const auto strategy = make_strategy(kind);
    StrategyAssignment assign(world.overlay, *strategy);
    PathBuilder builder(world.overlay, world.quality);
    auto stream = world.root.child("run");
    for (std::uint32_t j = 0; j < k; ++j) {
      session->run_connection(builder, world.history, assign, ledger, world.overlay, stream);
    }
    return session;
  }

  static constexpr net::PairId kPair = 2;
  static constexpr NodeId kInitiator = 0;
  static constexpr NodeId kResponder = 19;
  p2ptest::StableWorld world{4};
  payment::Bank bank{sim::rng::Stream(4).child("bank")};
  payment::SettlementEngine engine{bank};
};

}  // namespace

TEST_F(IncentiveTest, RunConnectionRecordsHistoryAndCosts) {
  PayoffLedger ledger(world.overlay.size());
  auto session = run_set(StrategyKind::kUtilityModelI, 1, ledger);
  ASSERT_EQ(session->connections_run(), 1u);
  const BuiltPath& p = session->paths().front();
  // Every forwarder got charged participation + transmission.
  for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
    const NodeLedger& l = ledger.at(p.nodes[i]);
    EXPECT_TRUE(l.participated);
    EXPECT_GT(l.cost, 0.0);
    EXPECT_GE(l.forwarding_instances, 1u);
  }
  // History recorded at each forwarder for this pair.
  if (p.forwarder_count() > 0) {
    EXPECT_GT(world.history.total_entries(), 0u);
  }
}

TEST_F(IncentiveTest, ForwarderSetGrowsMonotonically) {
  PayoffLedger ledger(world.overlay.size());
  auto session = std::make_unique<ConnectionSetSession>(kPair, kInitiator, kResponder,
                                                        Contract{});
  const auto strategy = make_strategy(StrategyKind::kRandom);
  StrategyAssignment assign(world.overlay, *strategy);
  PathBuilder builder(world.overlay, world.quality);
  auto stream = world.root.child("grow");
  std::size_t prev = 0;
  for (std::uint32_t j = 0; j < 10; ++j) {
    session->run_connection(builder, world.history, assign, ledger, world.overlay, stream);
    EXPECT_GE(session->forwarder_set().size(), prev);
    prev = session->forwarder_set().size();
  }
}

TEST_F(IncentiveTest, PathQualityDefinition) {
  PayoffLedger ledger(world.overlay.size());
  auto session = run_set(StrategyKind::kUtilityModelI, 5, ledger);
  const double L = session->average_path_length();
  const double set = static_cast<double>(session->forwarder_set().size());
  if (set > 0) {
    EXPECT_NEAR(session->path_quality(), L / set, 1e-12);
  }
}

TEST_F(IncentiveTest, FirstConnectionAllEdgesNew) {
  PayoffLedger ledger(world.overlay.size());
  auto session = run_set(StrategyKind::kUtilityModelI, 3, ledger);
  ASSERT_FALSE(session->new_edge_fractions().empty());
  // An edge can repeat within one path (revisits), so near-1 not exactly 1.
  EXPECT_GT(session->new_edge_fractions()[0], 0.75);
}

TEST_F(IncentiveTest, UtilityRoutingReducesNewEdgeFraction) {
  // Prop. 1: by late connections, utility routing reuses existing edges.
  PayoffLedger ledger(world.overlay.size());
  auto session = run_set(StrategyKind::kUtilityModelI, 15, ledger);
  const auto& f = session->new_edge_fractions();
  double late = 0;
  for (std::size_t j = 10; j < f.size(); ++j) late += f[j];
  late /= static_cast<double>(f.size() - 10);
  EXPECT_LT(late, 0.5) << "late connections should mostly reuse edges";
}

TEST_F(IncentiveTest, SettleCreditsForwardersExactly) {
  PayoffLedger ledger(world.overlay.size());
  Contract c;
  c.forwarding_benefit = 60.0;
  c.tau = 2.0;
  auto session = run_set(StrategyKind::kUtilityModelI, 4, ledger, c);

  std::size_t total_instances = 0;
  for (const BuiltPath& p : session->paths()) total_instances += p.forwarder_count();

  auto stream = world.root.child("settle");
  const SettleOutcome out = session->settle(bank, engine, ledger, world.overlay, stream);

  // All receipts accepted: paid == instances * P_f + P_r (all shares claimed
  // since every recorded forwarder claims).
  const payment::Amount expected =
      static_cast<payment::Amount>(total_instances) * payment::from_credits(60.0) +
      payment::from_credits(120.0);
  EXPECT_EQ(out.report.paid_out, expected);
  EXPECT_EQ(out.report.refunded, 0);
  EXPECT_EQ(out.forwarder_set_size, session->forwarder_set().size());
  EXPECT_NEAR(out.initiator_spend, payment::to_credits(expected), 1e-9);
}

TEST_F(IncentiveTest, SettlePayoffMatchesLedgerBenefits) {
  PayoffLedger ledger(world.overlay.size());
  auto session = run_set(StrategyKind::kUtilityModelI, 4, ledger);
  auto stream = world.root.child("settle2");
  const SettleOutcome out = session->settle(bank, engine, ledger, world.overlay, stream);

  double credited = 0;
  for (NodeId id = 0; id < world.overlay.size(); ++id) credited += ledger.at(id).benefit;
  EXPECT_NEAR(credited, payment::to_credits(out.report.paid_out), 1e-9);
}

TEST_F(IncentiveTest, SettleConservesBankMoney) {
  PayoffLedger ledger(world.overlay.size());
  auto session = run_set(StrategyKind::kUtilityModelII, 6, ledger);
  const payment::Amount before = bank.total_money() + bank.outstanding_coin_value();
  auto stream = world.root.child("settle3");
  session->settle(bank, engine, ledger, world.overlay, stream);
  EXPECT_EQ(bank.total_money() + bank.outstanding_coin_value(), before);
}

TEST_F(IncentiveTest, InitiatorPaysWhatForwardersReceive) {
  PayoffLedger ledger(world.overlay.size());
  auto session = run_set(StrategyKind::kUtilityModelI, 4, ledger);
  const payment::Amount init_before = bank.balance(bank.account_of(kInitiator));
  auto stream = world.root.child("settle4");
  const SettleOutcome out = session->settle(bank, engine, ledger, world.overlay, stream);
  const payment::Amount init_after = bank.balance(bank.account_of(kInitiator));
  // Initiator account decreased by exactly committed - 0 (refund goes to a
  // pseudonymous account, so out-of-pocket = escrow_in - refund only if the
  // refund is later swept; here we check committed total).
  EXPECT_EQ(init_before - init_after, out.report.escrow_in);
}

TEST_F(IncentiveTest, DropAttackForcesReformations) {
  p2ptest::StableWorld hostile(9, /*malicious=*/0.4);
  hostile.warmup();
  payment::Bank hbank{sim::rng::Stream(9).child("bank")};
  auto key_stream = hostile.root.child("keys");
  for (NodeId id = 0; id < hostile.overlay.size(); ++id) {
    hbank.open_account(id, payment::from_credits(1.0e7), key_stream.next_u64());
  }
  PayoffLedger ledger(hostile.overlay.size());
  ConnectionSetSession session(1, 0, 19, Contract{});
  const auto strategy = make_strategy(StrategyKind::kRandom);
  StrategyAssignment assign(hostile.overlay, *strategy);
  PathBuilder builder(hostile.overlay, hostile.quality);
  AdversaryModel adv;
  adv.drop_probability = 0.9;
  auto stream = hostile.root.child("drops");
  for (std::uint32_t j = 0; j < 20; ++j) {
    session.run_connection(builder, hostile.history, assign, ledger, hostile.overlay, stream,
                           adv);
  }
  EXPECT_GT(session.reformations(), 0u);
  EXPECT_EQ(session.connections_run(), 20u);  // all eventually delivered
}

TEST_F(IncentiveTest, PayoffLedgerGoodNodeFilters) {
  p2ptest::StableWorld mixed(11, /*malicious=*/0.5);
  PayoffLedger ledger(mixed.overlay.size());
  for (NodeId id = 0; id < mixed.overlay.size(); ++id) ledger.credit(id, 5.0);
  const auto acc = ledger.good_node_payoffs(mixed.overlay);
  EXPECT_EQ(acc.count(), mixed.overlay.good_nodes().size());
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(ledger.good_node_payoff_samples(mixed.overlay).size(), acc.count());
}

TEST_F(IncentiveTest, SettleWithZeroConnectionsRefundsRoutingBenefit) {
  // A connection set that never ran: the commitment is P_r alone, nobody
  // can claim, and everything returns to the (pseudonymous) refund account.
  PayoffLedger ledger(world.overlay.size());
  ConnectionSetSession session(kPair, kInitiator, kResponder, Contract{});
  auto stream = world.root.child("settle-empty");
  const SettleOutcome out = session.settle(bank, engine, ledger, world.overlay, stream);
  EXPECT_EQ(out.forwarder_set_size, 0u);
  EXPECT_EQ(out.report.paid_out, 0);
  EXPECT_EQ(out.report.refunded, out.report.escrow_in);
  EXPECT_EQ(out.report.escrow_in,
            payment::from_credits(Contract{}.routing_benefit()));
}

TEST_F(IncentiveTest, DirectOnlyConnectionsSettleCleanly) {
  // Contract that everyone declines: every path is I -> R direct, so there
  // are zero forwarding instances yet k connections ran.
  PayoffLedger ledger(world.overlay.size());
  Contract c;
  c.forwarding_benefit = 0.01;  // below C_p: all good nodes decline
  auto session = run_set(StrategyKind::kUtilityModelI, 3, ledger, c);
  for (const BuiltPath& p : session->paths()) {
    EXPECT_EQ(p.forwarder_count(), 0u);
  }
  auto stream = world.root.child("settle-direct");
  const SettleOutcome out = session->settle(bank, engine, ledger, world.overlay, stream);
  EXPECT_EQ(out.report.paid_out, 0);
  EXPECT_EQ(out.report.refunded, out.report.escrow_in);
}

TEST_F(IncentiveTest, ChargeParticipationOnlyOnce) {
  PayoffLedger ledger(world.overlay.size());
  ledger.charge_participation(world.overlay, 3);
  const double first = ledger.at(3).cost;
  ledger.charge_participation(world.overlay, 3);
  EXPECT_DOUBLE_EQ(ledger.at(3).cost, first);
}
