// Timeout-driven failure handling in AsyncConnectionRunner: ack timeouts
// under total loss, NACK fast path for graceful leaves, silence for silent
// crashes, backoff desynchronisation, suspicion learning, and the
// regression for the offline-responder completion bug.
#include <gtest/gtest.h>

#include "core/async_path.hpp"
#include "core/suspicion.hpp"
#include "fault/fault.hpp"
#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

struct AsyncHarness {
  explicit AsyncHarness(p2ptest::StableWorld& w)
      : builder(w.overlay, w.quality), strategy(), assign(w.overlay, strategy) {}

  AsyncResult establish(p2ptest::StableWorld& w, AsyncConfig cfg, std::uint32_t conn = 1,
                        fault::FaultInjector* faults = nullptr,
                        SuspicionTracker* suspicion = nullptr,
                        sim::Time drive = sim::hours(4.0)) {
    AsyncConnectionRunner runner(w.simulator, w.overlay, builder, cfg, faults, suspicion);
    AsyncResult captured;
    bool done = false;
    runner.establish(1, conn, 0, 19, Contract{}, assign, w.root.child("async", conn),
                     [&](const AsyncResult& r) {
                       captured = r;
                       done = true;
                     });
    w.simulator.run_until(w.simulator.now() + drive);
    EXPECT_TRUE(done) << "establishment never resolved";
    return captured;
  }

  PathBuilder builder;
  UtilityModelIRouting strategy;
  StrategyAssignment assign;
};

}  // namespace

TEST(AsyncTimeouts, TotalLossExhaustsAttemptsViaAckTimeouts) {
  p2ptest::StableWorld world{7};
  world.warmup();
  AsyncHarness h(world);

  fault::FaultConfig fcfg;
  fcfg.link_loss = 1.0;  // every leg dropped: only timers can fail the attempt
  fault::FaultInjector faults(fcfg, world.overlay, world.root.child("faults"));

  AsyncConfig acfg;
  acfg.max_attempts = 3;
  const AsyncResult r = h.establish(world, acfg, 1, &faults);
  EXPECT_FALSE(r.established);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.ack_timeouts, 3u) << "each attempt must die by exactly one ack timeout";
}

TEST(AsyncTimeouts, AckTimeoutsFeedSuspicion) {
  p2ptest::StableWorld world{7};
  world.warmup();
  AsyncHarness h(world);

  fault::FaultConfig fcfg;
  fcfg.link_loss = 1.0;
  fault::FaultInjector faults(fcfg, world.overlay, world.root.child("faults"));
  SuspicionTracker suspicion(world.overlay.size());

  AsyncConfig acfg;
  acfg.max_attempts = 4;
  (void)h.establish(world, acfg, 1, &faults, &suspicion);
  EXPECT_GT(suspicion.epoch(), 0u);
  std::uint32_t total = 0;
  for (NodeId v = 0; v < world.overlay.size(); ++v) total += suspicion.count(v);
  EXPECT_EQ(total, 4u) << "one suspect recorded per timed-out attempt";
}

TEST(AsyncTimeouts, BackoffJitterDesynchronisesRetries) {
  // Two establishments with different streams must not retry in lockstep:
  // their jittered backoff draws differ, so failure resolution times differ.
  p2ptest::StableWorld world{11};
  world.warmup();
  AsyncHarness h(world);

  fault::FaultConfig fcfg;
  fcfg.link_loss = 1.0;
  fault::FaultInjector faults(fcfg, world.overlay, world.root.child("faults"));

  AsyncConfig acfg;
  acfg.max_attempts = 4;
  const sim::Time t0 = world.simulator.now();
  const AsyncResult a = h.establish(world, acfg, 1, &faults);
  const sim::Time ta = world.simulator.now();
  const AsyncResult b = h.establish(world, acfg, 2, &faults);
  EXPECT_FALSE(a.established);
  EXPECT_FALSE(b.established);
  EXPECT_NE(a.setup_time, b.setup_time)
      << "independent backoff streams must produce different retry schedules";
  EXPECT_GT(ta, t0);
}

TEST(AsyncTimeouts, GracefulOfflineResponderFailsFastViaNack) {
  // Regression for the confirm-step audit: a responder that left gracefully
  // must abort the attempt (NACK), never complete through a dead endpoint.
  p2ptest::StableWorld world{13};
  world.warmup();
  AsyncHarness h(world);

  world.overlay.force_offline(19);
  AsyncConfig acfg;
  acfg.max_attempts = 2;
  const AsyncResult r = h.establish(world, acfg, 1);
  EXPECT_FALSE(r.established);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.ack_timeouts, 0u) << "graceful leaves are refused, not timed out";
}

TEST(AsyncTimeouts, CrashedResponderTimesOutSilently) {
  p2ptest::StableWorld world{13};
  world.warmup();
  AsyncHarness h(world);

  ASSERT_TRUE(world.overlay.crash(19));
  AsyncConfig acfg;
  acfg.max_attempts = 2;
  const AsyncResult r = h.establish(world, acfg, 1);
  EXPECT_FALSE(r.established);
  EXPECT_GT(r.ack_timeouts, 0u) << "a crashed responder answers nothing; timers must fire";
}

TEST(AsyncTimeouts, KillingForwarderMidConfirmationAbortsAttempt) {
  // Learn the path and timing on a clean run, then rebuild the same-seeded
  // world and kill the first forwarder while the reverse confirmation is in
  // flight. The attempt must fail (detected via NACK or timeout) and the
  // final path must not route through the killed node as a forwarder.
  const auto clean = [] {
    p2ptest::StableWorld w{29};
    w.warmup();
    AsyncHarness h(w);
    return h.establish(w, AsyncConfig{}, 1);
  }();
  ASSERT_TRUE(clean.established);
  ASSERT_GE(clean.path.nodes.size(), 3u) << "need at least one forwarder to kill";
  const NodeId victim = clean.path.nodes[1];

  p2ptest::StableWorld world{29};
  world.warmup();
  AsyncHarness h(world);
  // Strike while the confirmation retraces the path: after the forward pass
  // completes (half the round trip) but strictly before the confirm reaches
  // the victim on the way back at setup_time - latency(initiator, victim).
  const sim::Time first_leg =
      world.overlay.links().transfer_time(clean.path.nodes[0], victim);
  const sim::Time victim_confirm_at = clean.setup_time - first_leg;
  const sim::Time kill_at = 0.5 * (0.5 * clean.setup_time + victim_confirm_at);
  ASSERT_LT(kill_at, victim_confirm_at);
  world.simulator.schedule_in(kill_at, [&] { world.overlay.force_offline(victim); });
  const AsyncResult r = h.establish(world, AsyncConfig{}, 1);
  EXPECT_GT(r.attempts, 1u) << "killing a relay mid-confirmation must force a retry";
  if (r.established) {
    for (std::size_t i = 1; i + 1 < r.path.nodes.size(); ++i) {
      EXPECT_NE(r.path.nodes[i], victim)
          << "final path routes through a node known to be offline";
    }
  }
}

TEST(AsyncTimeouts, RelayTimesNeverPassThroughCrashedNode) {
  // Soak: under crash + loss faults, every established path's forward relay
  // times must be consistent with ground truth — no node handled the setup
  // payload while it was crashed.
  p2ptest::StableWorld world{31};
  world.warmup();
  AsyncHarness h(world);

  fault::FaultConfig fcfg;
  fcfg.link_loss = 0.05;
  fcfg.crash_rate_per_hour = 6.0;
  fcfg.crash_recovery_mean = sim::minutes(5.0);
  fault::FaultInjector faults(fcfg, world.overlay, world.root.child("faults"));
  faults.start();

  int established = 0;
  for (std::uint32_t conn = 1; conn <= 12; ++conn) {
    world.overlay.force_online(0);
    world.overlay.force_online(19);
    const AsyncResult r = h.establish(world, AsyncConfig{}, conn, &faults, nullptr,
                                      sim::minutes(30.0));
    if (!r.established) continue;
    ++established;
    ASSERT_EQ(r.relay_times.size(), r.path.nodes.size());
    for (std::size_t i = 0; i < r.path.nodes.size(); ++i) {
      const NodeId v = r.path.nodes[i];
      const sim::Time crashed_at = faults.last_crash_time(v);
      if (crashed_at < 0.0 || crashed_at > r.relay_times[i]) continue;
      const sim::Time recovered_at = faults.last_recovery_time(v);
      EXPECT_TRUE(recovered_at > crashed_at && recovered_at <= r.relay_times[i])
          << "node " << v << " relayed at " << r.relay_times[i]
          << " but crashed at " << crashed_at << " and recovered at " << recovered_at;
    }
  }
  EXPECT_GT(established, 0) << "soak produced no established paths to audit";
}
