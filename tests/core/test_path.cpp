#include "core/path.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class PathTest : public ::testing::Test {
 protected:
  void SetUp() override { world.warmup(); }

  BuiltPath build(StrategyKind kind, std::uint32_t conn = 1, const char* tag = "path",
                  Contract contract = {}) {
    const auto strategy = make_strategy(kind);
    StrategyAssignment assign(world.overlay, *strategy);
    PathBuilder builder(world.overlay, world.quality);
    auto stream = world.root.child(tag, conn);
    return builder.build(kPair, conn, kInitiator, kResponder, contract, assign, stream);
  }

  static constexpr net::PairId kPair = 6;
  static constexpr NodeId kInitiator = 0;
  static constexpr NodeId kResponder = 19;
  p2ptest::StableWorld world{3};
};

}  // namespace

TEST_F(PathTest, PathStartsAtInitiatorEndsAtResponder) {
  for (auto kind : {StrategyKind::kRandom, StrategyKind::kUtilityModelI,
                    StrategyKind::kUtilityModelII}) {
    const BuiltPath p = build(kind);
    ASSERT_GE(p.nodes.size(), 2u);
    EXPECT_EQ(p.initiator(), kInitiator);
    EXPECT_EQ(p.responder(), kResponder);
  }
}

TEST_F(PathTest, EdgeQualitiesAlignWithEdges) {
  const BuiltPath p = build(StrategyKind::kUtilityModelI);
  EXPECT_EQ(p.edge_qualities.size(), p.nodes.size() - 1);
  for (double q : p.edge_qualities) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
  EXPECT_DOUBLE_EQ(p.edge_qualities.back(), 1.0);  // final edge into R
}

TEST_F(PathTest, IntermediateHopsAreNeighbors) {
  const BuiltPath p = build(StrategyKind::kRandom);
  // Every non-final hop must go to a neighbour of the holder (final hop may
  // be a direct delivery).
  for (std::size_t i = 0; i + 2 < p.nodes.size(); ++i) {
    const auto nbs = world.overlay.neighbors(p.nodes[i]);
    EXPECT_TRUE(std::find(nbs.begin(), nbs.end(), p.nodes[i + 1]) != nbs.end())
        << "hop " << i << " not a neighbour";
  }
}

TEST_F(PathTest, CrowdsPathLengthGeometricOnAverage) {
  Contract c;
  c.termination = TerminationPolicy::kCrowds;
  c.p_forward = 0.75;
  double total = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(build(StrategyKind::kRandom, i + 1, "geo", c).forwarder_count());
  }
  // Mean forwarder count = 1/(1-p) = 4 under pure Crowds; utility declines
  // and candidate exhaustion can shorten paths slightly.
  EXPECT_NEAR(total / n, 4.0, 1.0);
}

TEST_F(PathTest, HopCountPolicyBoundsForwarders) {
  Contract c;
  c.termination = TerminationPolicy::kHopCount;
  c.ttl_hops = 3;
  for (int i = 0; i < 50; ++i) {
    const BuiltPath p = build(StrategyKind::kRandom, i + 1, "ttl", c);
    EXPECT_LE(p.forwarder_count(), 3u);
    EXPECT_GE(p.forwarder_count(), 1u);  // first hop unconditional
  }
}

TEST_F(PathTest, MaxForwardersGuardRespected) {
  Contract c;
  c.termination = TerminationPolicy::kCrowds;
  c.p_forward = 0.999;  // essentially never deliver voluntarily
  PathBuilderConfig cfg;
  cfg.max_forwarders = 10;
  const auto strategy = make_strategy(StrategyKind::kRandom);
  StrategyAssignment assign(world.overlay, *strategy);
  PathBuilder builder(world.overlay, world.quality, cfg);
  auto stream = world.root.child("guard");
  const BuiltPath p = builder.build(kPair, 1, kInitiator, kResponder, c, assign, stream);
  EXPECT_LE(p.forwarder_count(), 10u);
  EXPECT_EQ(p.responder(), kResponder);
}

TEST_F(PathTest, DeclinesWhenBenefitTooLow) {
  Contract c;
  c.forwarding_benefit = 0.01;  // below everyone's C_p
  c.tau = 2.0;
  const auto strategy = make_strategy(StrategyKind::kUtilityModelI);
  StrategyAssignment assign(world.overlay, *strategy);
  PathBuilder builder(world.overlay, world.quality);
  auto stream = world.root.child("declines");
  const BuiltPath p = builder.build(kPair, 1, kInitiator, kResponder, c, assign, stream);
  // Everyone declines: the initiator's only option each hop is delivery...
  // but the first hop is unconditional, so the path is I -> R direct after
  // candidate exhaustion.
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{kInitiator, kResponder}));
  EXPECT_GT(p.declined, 0u);
}

TEST_F(PathTest, NoDeclinesWhenDisabled) {
  Contract c;
  c.forwarding_benefit = 0.01;
  PathBuilderConfig cfg;
  cfg.allow_declines = false;
  const auto strategy = make_strategy(StrategyKind::kUtilityModelI);
  StrategyAssignment assign(world.overlay, *strategy);
  PathBuilder builder(world.overlay, world.quality, cfg);
  auto stream = world.root.child("nodecl");
  const BuiltPath p = builder.build(kPair, 1, kInitiator, kResponder, c, assign, stream);
  EXPECT_EQ(p.declined, 0u);
}

TEST_F(PathTest, DeterministicGivenSameStream) {
  auto build_with = [&](const char* tag) {
    const auto strategy = make_strategy(StrategyKind::kUtilityModelI);
    StrategyAssignment assign(world.overlay, *strategy);
    PathBuilder builder(world.overlay, world.quality);
    auto stream = world.root.child(tag);
    return builder.build(kPair, 1, kInitiator, kResponder, Contract{}, assign, stream).nodes;
  };
  EXPECT_EQ(build_with("same"), build_with("same"));
}

TEST_F(PathTest, UtilityRoutingReusesForwardersAcrossConnections) {
  // Build k connections recording history between them; the union of
  // forwarders under model I must be smaller than under random routing.
  auto run = [&](StrategyKind kind, const char* tag) {
    const auto strategy = make_strategy(kind);
    StrategyAssignment assign(world.overlay, *strategy);
    PathBuilder builder(world.overlay, world.quality);
    std::set<NodeId> forwarders;
    HistoryStore fresh(world.overlay.size());
    EdgeQualityEvaluator quality(world.probing, fresh, QualityWeights{});
    PathBuilder b2(world.overlay, quality);
    for (std::uint32_t k = 1; k <= 20; ++k) {
      auto stream = world.root.child(tag, k);
      const BuiltPath p = b2.build(kPair, k, kInitiator, kResponder, Contract{}, assign, stream);
      fresh.record_path(kPair, k, p.nodes);
      for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) forwarders.insert(p.nodes[i]);
    }
    return forwarders.size();
  };
  const auto random_set = run(StrategyKind::kRandom, "rr");
  const auto utility_set = run(StrategyKind::kUtilityModelI, "u1");
  EXPECT_LT(utility_set, random_set);
}
