#include <gtest/gtest.h>

#include "core/routing.hpp"
#include "core/utility.hpp"
#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class UtilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world.warmup();
    ctx = std::make_unique<RoutingContext>(
        RoutingContext{world.overlay, world.quality, Contract{}, 4, 1, kResponder});
  }

  static constexpr NodeId kResponder = 19;
  p2ptest::StableWorld world{2};
  std::unique_ptr<RoutingContext> ctx;
};

}  // namespace

TEST_F(UtilityTest, Model1MatchesFormula) {
  const NodeId i = 0;
  const NodeId j = world.overlay.neighbors(i)[0];
  const double q = world.quality.edge_quality(i, j, kResponder, 4, net::kInvalidNode, 1);
  const double expected = ctx->contract.forwarding_benefit + q * ctx->contract.routing_benefit() -
                          (participation_cost(*ctx, i) + transmission_cost(*ctx, i, j));
  EXPECT_DOUBLE_EQ(model1_utility(*ctx, i, net::kInvalidNode, j), expected);
}

TEST_F(UtilityTest, Model1IncreasesWithEdgeQuality) {
  // Forwarding straight to the responder has quality 1, the best possible,
  // so (cost differences aside) its utility dominates.
  const NodeId i = 0;
  const double to_r = model1_utility(*ctx, i, net::kInvalidNode, kResponder);
  for (NodeId j : world.overlay.neighbors(i)) {
    if (j == kResponder) continue;
    // Same costs would imply lower utility; allow small cost wiggle.
    EXPECT_LT(model1_utility(*ctx, i, net::kInvalidNode, j),
              to_r + ctx->contract.routing_benefit() * 0.01 + 5.0);
  }
}

TEST_F(UtilityTest, Model2WithDepthOneMatchesModel1) {
  const NodeId i = 0;
  for (NodeId j : world.overlay.neighbors(i)) {
    // depth 1: no onward exploration beyond the chosen edge... except the
    // forced onward term for non-responder j, which uses depth 0 => 0... but
    // best_onward_quality floors at the direct-delivery quality 1.
    const double m2 = model2_utility(*ctx, i, net::kInvalidNode, j, 1);
    const double m1 = model1_utility(*ctx, i, net::kInvalidNode, j);
    if (j == kResponder) {
      EXPECT_DOUBLE_EQ(m2, m1);
    } else {
      EXPECT_GE(m2, m1);  // onward continuation can only add quality
    }
  }
}

TEST_F(UtilityTest, BestOnwardQualityAtLeastDirectDelivery) {
  for (NodeId i = 0; i < world.overlay.size(); ++i) {
    if (i == kResponder) continue;
    EXPECT_GE(best_onward_quality(*ctx, i, net::kInvalidNode, 3), 1.0);
  }
}

TEST_F(UtilityTest, BestOnwardQualityMonotoneInDepth) {
  const NodeId i = 0;
  double prev = 0.0;
  for (std::uint32_t d = 1; d <= 4; ++d) {
    const double q = best_onward_quality(*ctx, i, net::kInvalidNode, d);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST_F(UtilityTest, ResponderHasNoOnwardQuality) {
  EXPECT_DOUBLE_EQ(best_onward_quality(*ctx, kResponder, net::kInvalidNode, 3), 0.0);
}

TEST_F(UtilityTest, WouldParticipateUnderGenerousBenefit) {
  // P_f = 75 against C_p = 10 and tiny C_t: everyone participates (Prop. 3).
  for (NodeId j = 0; j < world.overlay.size(); ++j) {
    if (j == kResponder) continue;
    EXPECT_TRUE(would_participate(*ctx, j));
  }
}

TEST_F(UtilityTest, WouldNotParticipateWhenBenefitBelowCost) {
  RoutingContext poor = *ctx;
  poor.contract.forwarding_benefit = 0.01;  // below C_p = 10
  for (NodeId j = 0; j < world.overlay.size(); ++j) {
    if (j == kResponder) continue;
    EXPECT_FALSE(would_participate(poor, j));
  }
}

// ---------------------------------------------------------------------------
// Routing strategies.
// ---------------------------------------------------------------------------

namespace {

class RoutingTest : public UtilityTest {
 protected:
  std::vector<NodeId> candidates_of(NodeId s) {
    auto c = world.overlay.online_neighbors(s);
    return c;
  }
};

}  // namespace

TEST_F(RoutingTest, RandomRoutingPicksFromCandidates) {
  RandomRouting random;
  auto stream = world.root.child("pick");
  const auto candidates = candidates_of(0);
  ASSERT_FALSE(candidates.empty());
  for (int i = 0; i < 50; ++i) {
    const HopChoice c = random.choose(*ctx, 0, net::kInvalidNode, candidates, stream);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), c.next), candidates.end());
  }
}

TEST_F(RoutingTest, RandomRoutingCoversAllCandidates) {
  RandomRouting random;
  auto stream = world.root.child("pick2");
  const auto candidates = candidates_of(0);
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(random.choose(*ctx, 0, net::kInvalidNode, candidates, stream).next);
  }
  EXPECT_EQ(seen.size(), candidates.size());
}

TEST_F(RoutingTest, Model1PicksArgmaxUtility) {
  UtilityModelIRouting routing;
  auto stream = world.root.child("pick3");
  const auto candidates = candidates_of(0);
  const HopChoice c = routing.choose(*ctx, 0, net::kInvalidNode, candidates, stream);
  for (NodeId j : candidates) {
    EXPECT_GE(c.utility + 1e-12, model1_utility(*ctx, 0, net::kInvalidNode, j));
  }
}

TEST_F(RoutingTest, Model1Deterministic) {
  UtilityModelIRouting routing;
  auto s1 = world.root.child("a"), s2 = world.root.child("b");
  const auto candidates = candidates_of(0);
  EXPECT_EQ(routing.choose(*ctx, 0, net::kInvalidNode, candidates, s1).next,
            routing.choose(*ctx, 0, net::kInvalidNode, candidates, s2).next);
}

TEST_F(RoutingTest, Model1PrefersResponderWhenAdjacent) {
  // The responder edge has quality 1 (max); with near-uniform costs the
  // argmax must be the responder when it is a candidate.
  std::vector<NodeId> candidates = candidates_of(0);
  candidates.push_back(kResponder);
  UtilityModelIRouting routing;
  auto stream = world.root.child("pick4");
  const HopChoice c = routing.choose(*ctx, 0, net::kInvalidNode, candidates, stream);
  EXPECT_EQ(c.next, kResponder);
  EXPECT_DOUBLE_EQ(c.edge_quality, 1.0);
}

TEST_F(RoutingTest, Model1HistoryMakesChoiceSticky) {
  // After recording history for one neighbour, model 1 keeps picking it.
  UtilityModelIRouting routing;
  auto stream = world.root.child("pick5");
  const auto candidates = candidates_of(0);
  ASSERT_GE(candidates.size(), 2u);
  const NodeId favoured = candidates.back();
  for (std::uint32_t k = 1; k <= 8; ++k) {
    world.history.at(0).record({ctx->pair, k, net::kInvalidNode, favoured});
  }
  RoutingContext later = *ctx;
  later.conn_index = 9;
  const HopChoice c = routing.choose(later, 0, net::kInvalidNode, candidates, stream);
  EXPECT_EQ(c.next, favoured);
}

TEST_F(RoutingTest, Model2PicksArgmaxOfModel2Utility) {
  UtilityModelIIRouting routing(3);
  auto stream = world.root.child("pick6");
  const auto candidates = candidates_of(0);
  const HopChoice c = routing.choose(*ctx, 0, net::kInvalidNode, candidates, stream);
  for (NodeId j : candidates) {
    EXPECT_GE(c.utility + 1e-12, model2_utility(*ctx, 0, net::kInvalidNode, j, 3));
  }
}

TEST_F(RoutingTest, StrategyAssignmentRoutesMaliciousRandomly) {
  p2ptest::StableWorld bad(7, /*malicious=*/0.5);
  bad.warmup();
  UtilityModelIRouting good;
  StrategyAssignment assign(bad.overlay, good);
  for (NodeId id = 0; id < bad.overlay.size(); ++id) {
    if (bad.overlay.node(id).is_malicious()) {
      EXPECT_EQ(assign.of(id).name(), "random");
    } else {
      EXPECT_EQ(assign.of(id).name(), "utility-model-1");
    }
  }
}

TEST(StrategyFactory, MakesAllKinds) {
  EXPECT_EQ(make_strategy(StrategyKind::kRandom)->name(), "random");
  EXPECT_EQ(make_strategy(StrategyKind::kUtilityModelI)->name(), "utility-model-1");
  EXPECT_EQ(make_strategy(StrategyKind::kUtilityModelII)->name(), "utility-model-2");
  EXPECT_EQ(strategy_name(StrategyKind::kUtilityModelII), "utility-model-2");
}
