// Weight-parameterised properties of edge quality and the utility models.
#include <gtest/gtest.h>

#include "core/utility.hpp"
#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class QualityWeightSweep : public ::testing::TestWithParam<double> {
 protected:
  QualityWeightSweep()
      : world(71),
        weights{GetParam(), 1.0 - GetParam()},
        quality(world.probing, world.history, weights) {}

  void SetUp() override { world.warmup(); }

  p2ptest::StableWorld world;
  QualityWeights weights;
  EdgeQualityEvaluator quality;
};

}  // namespace

TEST_P(QualityWeightSweep, QualityBoundedForAllEdges) {
  for (NodeId s = 0; s < world.overlay.size(); ++s) {
    for (NodeId v : world.overlay.neighbors(s)) {
      const double q = quality.edge_quality(s, v, 19, 1, net::kInvalidNode, 3);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
}

TEST_P(QualityWeightSweep, ResponderEdgeAlwaysOne) {
  EXPECT_DOUBLE_EQ(quality.edge_quality(0, 19, 19, 1, net::kInvalidNode, 5), 1.0);
}

TEST_P(QualityWeightSweep, HistoryNeverLowersQuality) {
  const NodeId s = 0;
  const NodeId v = world.overlay.neighbors(s)[0];
  const double before = quality.edge_quality(s, v, 19, 2, net::kInvalidNode, 4);
  for (std::uint32_t k = 1; k <= 3; ++k) {
    world.history.at(s).record({2, k, net::kInvalidNode, v});
  }
  const double after = quality.edge_quality(s, v, 19, 2, net::kInvalidNode, 4);
  EXPECT_GE(after, before - 1e-12);
}

TEST_P(QualityWeightSweep, Model1UtilityMonotoneInQuality) {
  // Holding costs fixed, a strictly better edge must yield strictly higher
  // Model-I utility whenever P_r > 0 — the alignment property Eq. 1 is
  // built for. We synthesise the comparison via history manipulation.
  RoutingContext ctx{world.overlay, quality, Contract{}, 6, 5, 19};
  const NodeId s = 1;
  const auto nbs = world.overlay.neighbors(s);
  ASSERT_GE(nbs.size(), 2u);
  const NodeId hi = nbs[0];
  for (std::uint32_t k = 1; k <= 4; ++k) {
    world.history.at(s).record({6, k, net::kInvalidNode, hi});
  }
  const double q_hi = quality.edge_quality(s, hi, 19, 6, net::kInvalidNode, 5);
  const double q_lo = quality.edge_quality(s, nbs[1], 19, 6, net::kInvalidNode, 5);
  if (weights.w_selectivity == 0.0 || q_hi <= q_lo) {
    GTEST_SKIP() << "no quality contrast under these weights";
  }
  const double u_hi = model1_utility(ctx, s, net::kInvalidNode, hi) +
                      transmission_cost(ctx, s, hi);  // normalise cost away
  const double u_lo = model1_utility(ctx, s, net::kInvalidNode, nbs[1]) +
                      transmission_cost(ctx, s, nbs[1]);
  EXPECT_GT(u_hi, u_lo);
}

TEST_P(QualityWeightSweep, Model2AtLeastModel1ForInteriorHops) {
  RoutingContext ctx{world.overlay, quality, Contract{}, 6, 1, 19};
  for (NodeId j : world.overlay.neighbors(0)) {
    if (j == 19) continue;
    EXPECT_GE(model2_utility(ctx, 0, net::kInvalidNode, j, 3) + 1e-12,
              model1_utility(ctx, 0, net::kInvalidNode, j));
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, QualityWeightSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));
