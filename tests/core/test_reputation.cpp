#include "core/reputation.hpp"

#include "core/incentive.hpp"

#include <gtest/gtest.h>

#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

TEST(ReputationSystem, StartsAtInitialScore) {
  ReputationSystem rep(10, ReputationConfig{});
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      EXPECT_DOUBLE_EQ(rep.score(a, b), 0.5);
    }
  }
}

TEST(ReputationSystem, SuccessRaisesFailureLowers) {
  ReputationSystem rep(5, ReputationConfig{});
  rep.report_success(0, 1);
  EXPECT_DOUBLE_EQ(rep.score(0, 1), 0.52);
  rep.report_failure(0, 1);
  EXPECT_DOUBLE_EQ(rep.score(0, 1), 0.42);
}

TEST(ReputationSystem, ScoresClampToUnitInterval) {
  ReputationSystem rep(3, ReputationConfig{});
  for (int i = 0; i < 100; ++i) rep.report_success(0, 1);
  EXPECT_DOUBLE_EQ(rep.score(0, 1), 1.0);
  for (int i = 0; i < 100; ++i) rep.report_failure(0, 1);
  EXPECT_DOUBLE_EQ(rep.score(0, 1), 0.0);
}

TEST(ReputationSystem, GlobalScopeSharesScores) {
  ReputationConfig cfg;
  cfg.global_scope = true;
  ReputationSystem rep(5, cfg);
  rep.report_success(0, 3);
  EXPECT_GT(rep.score(4, 3), 0.5);  // someone else's observation visible
}

TEST(ReputationSystem, LocalScopeIsolatesObservers) {
  ReputationConfig cfg;
  cfg.global_scope = false;
  ReputationSystem rep(5, cfg);
  rep.report_success(0, 3);
  EXPECT_GT(rep.score(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(rep.score(4, 3), 0.5);  // unaffected
}

TEST(ReputationSystem, CollusionInflatesGlobalScores) {
  // The paper's §4 critique: colluders can pump each other's reputation.
  ReputationConfig cfg;
  cfg.global_scope = true;
  ReputationSystem rep(10, cfg);
  const std::vector<NodeId> coalition{7, 8, 9};
  rep.apply_collusion(coalition, /*reports=*/20);
  for (NodeId c : coalition) {
    EXPECT_DOUBLE_EQ(rep.score(0, c), 1.0) << "colluder " << c << " not inflated";
  }
  EXPECT_DOUBLE_EQ(rep.score(0, 0), 0.5);  // honest nodes unchanged
}

TEST(ReputationSystem, CollusionHarmlessInLocalScope) {
  ReputationConfig cfg;
  cfg.global_scope = false;
  ReputationSystem rep(10, cfg);
  const std::vector<NodeId> coalition{7, 8, 9};
  rep.apply_collusion(coalition, 20);
  // Honest observers' views are untouched.
  EXPECT_DOUBLE_EQ(rep.score(0, 7), 0.5);
}

TEST(ReputationSystem, ObservePathReportsAdjacentSuccesses) {
  ReputationSystem rep(6, ReputationConfig{});
  const std::vector<NodeId> path{0, 1, 2, 3, 5};  // forwarders 1, 2, 3
  rep.observe_path(path);
  EXPECT_GT(rep.score(0, 1), 0.5);
  EXPECT_GT(rep.score(1, 2), 0.5);
  EXPECT_GT(rep.score(2, 3), 0.5);
}

TEST(ReputationSystem, ObservePathStopsAtDrop) {
  ReputationSystem rep(6, ReputationConfig{});
  const std::vector<NodeId> path{0, 1, 2, 3, 5};
  rep.observe_path(path, /*dropped_at=*/2);  // node 2 dropped the payload
  EXPECT_GT(rep.score(0, 1), 0.5);  // node 1 forwarded fine
  EXPECT_LT(rep.score(1, 2), 0.5);  // dropper penalised
  EXPECT_DOUBLE_EQ(rep.score(2, 3), 0.5);  // downstream unobserved
}

TEST(ReputationRouting, PicksHighestScoredCandidate) {
  p2ptest::StableWorld world(31);
  world.warmup();
  ReputationSystem rep(world.overlay.size(), ReputationConfig{});
  const auto candidates = world.overlay.online_neighbors(0);
  ASSERT_GE(candidates.size(), 2u);
  const NodeId favoured = candidates[1];
  for (int i = 0; i < 10; ++i) rep.report_success(0, favoured);

  ReputationRouting routing(rep);
  RoutingContext ctx{world.overlay, world.quality, Contract{}, 1, 1, 19};
  auto stream = world.root.child("rep");
  const HopChoice c = routing.choose(ctx, 0, net::kInvalidNode, candidates, stream);
  EXPECT_EQ(c.next, favoured);
  EXPECT_EQ(routing.name(), "reputation");
}

TEST(ReputationRouting, CollusionAttractsPaths) {
  // End-to-end: with global reputation and a pumped coalition, paths route
  // through colluders far more than their population share.
  p2ptest::StableWorld world(32, /*malicious=*/0.0, /*nodes=*/25, /*degree=*/6);
  world.warmup();
  ReputationSystem rep(world.overlay.size(), ReputationConfig{});
  // Coalition placed adjacent to the initiator so reachability does not
  // depend on tie-breaking through the rest of the graph.
  const auto nbs = world.overlay.neighbors(0);
  std::vector<NodeId> coalition(nbs.begin(), nbs.begin() + 3);
  rep.apply_collusion(coalition, 30);

  ReputationRouting routing(rep);
  StrategyAssignment assign(world.overlay, routing);
  PathBuilder builder(world.overlay, world.quality);
  PayoffLedger ledger(world.overlay.size());

  std::size_t coalition_instances = 0, total_instances = 0;
  ConnectionSetSession session(1, 0, 24, Contract{});
  auto stream = world.root.child("collude");
  for (std::uint32_t k = 0; k < 20; ++k) {
    const BuiltPath& p =
        session.run_connection(builder, world.history, assign, ledger, world.overlay, stream);
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      ++total_instances;
      for (NodeId c : coalition) {
        if (p.nodes[i] == c) ++coalition_instances;
      }
    }
  }
  if (total_instances < 10) GTEST_SKIP() << "too few instances to judge";
  const double share =
      static_cast<double>(coalition_instances) / static_cast<double>(total_instances);
  // Population share is 3/25 = 12%; pumped reputation should far exceed it
  // whenever a colluder is reachable.
  EXPECT_GT(share, 0.2);
}
