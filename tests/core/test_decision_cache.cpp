// The decision stack's caching layers must be *invisible* except in cost:
// bitwise-identical doubles with and without the edge-quality cache, the
// memoised lookahead and the lazy SPNE solver. These tests pin that
// contract, plus the epoch-invalidation and generation-isolation mechanics
// that make it safe.
#include <gtest/gtest.h>

#include <vector>

#include "core/decision_scratch.hpp"
#include "core/edge_quality.hpp"
#include "core/flat_hash.hpp"
#include "core/spne_routing.hpp"
#include "core/utility.hpp"
#include "fixtures.hpp"

using namespace p2panon::core;
using p2panon::net::kInvalidNode;
using p2panon::net::NodeId;
using p2ptest::StableWorld;

TEST(PackedFlatMap, InsertFindErase) {
  PackedFlatMap<std::uint32_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(PackedKey::of(1, 2, 3)), nullptr);
  ++m.get_or_insert(PackedKey::of(1, 2, 3));
  ++m.get_or_insert(PackedKey::of(1, 2, 3));
  ++m.get_or_insert(PackedKey::of(4, 5, 6, 7));
  ASSERT_NE(m.find(PackedKey::of(1, 2, 3)), nullptr);
  EXPECT_EQ(*m.find(PackedKey::of(1, 2, 3)), 2u);
  EXPECT_EQ(*m.find(PackedKey::of(4, 5, 6, 7)), 1u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(PackedKey::of(1, 2, 3)));
  EXPECT_FALSE(m.erase(PackedKey::of(1, 2, 3)));
  EXPECT_EQ(m.find(PackedKey::of(1, 2, 3)), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(PackedFlatMap, SurvivesGrowthAndChurn) {
  // Many inserts force several growth steps; interleaved erases exercise
  // backward-shift deletion. Mirror against a reference count.
  PackedFlatMap<std::uint32_t> m;
  constexpr std::uint32_t kN = 2000;
  for (std::uint32_t i = 0; i < kN; ++i) m.get_or_insert(PackedKey::of(i, i * 7, i % 13)) = i;
  for (std::uint32_t i = 0; i < kN; i += 3) EXPECT_TRUE(m.erase(PackedKey::of(i, i * 7, i % 13)));
  std::size_t present = 0;
  for (std::uint32_t i = 0; i < kN; ++i) {
    const std::uint32_t* v = m.find(PackedKey::of(i, i * 7, i % 13));
    if (i % 3 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, i);
      ++present;
    }
  }
  EXPECT_EQ(m.size(), present);
}

TEST(PackedFlatMap, DistinctKeysDoNotAlias) {
  // The four id fields occupy disjoint bit ranges: permutations of the same
  // ids are different keys.
  PackedFlatMap<std::uint32_t> m;
  m.get_or_insert(PackedKey::of(1, 2, 3, 4)) = 10;
  m.get_or_insert(PackedKey::of(4, 3, 2, 1)) = 20;
  m.get_or_insert(PackedKey::of(1, 2, 4, 3)) = 30;
  EXPECT_EQ(*m.find(PackedKey::of(1, 2, 3, 4)), 10u);
  EXPECT_EQ(*m.find(PackedKey::of(4, 3, 2, 1)), 20u);
  EXPECT_EQ(*m.find(PackedKey::of(1, 2, 4, 3)), 30u);
}

TEST(DecisionScratch, GenerationIsolatesDecisions) {
  DecisionResources res;
  const PackedKey key = PackedKey::of(1, 2, 3, kScratchLookahead);
  double out = 0.0;
  EXPECT_FALSE(res.scratch.armed());
  {
    DecisionScope scope(&res);
    EXPECT_TRUE(res.scratch.armed());
    EXPECT_FALSE(res.scratch.lookup(key, &out));
    res.scratch.store(key, 0.75);
    ASSERT_TRUE(res.scratch.lookup(key, &out));
    EXPECT_EQ(out, 0.75);
  }
  EXPECT_FALSE(res.scratch.armed());
  {
    DecisionScope scope(&res);
    // A new decision must not see the previous decision's entries.
    EXPECT_FALSE(res.scratch.lookup(key, &out));
  }
}

TEST(DecisionScope, NullResourcesAreANoOp) {
  DecisionScope scope(nullptr);  // must not crash; plain recursion path
}

namespace {

/// Warmed world with recorded history so selectivity is non-trivial.
struct CacheWorld : StableWorld {
  CacheWorld() : StableWorld(/*seed=*/11) {
    warmup();
    // Record a few paths for pair 0 so some (pred, succ) counts are > 0.
    for (std::uint32_t k = 1; k <= 5; ++k) {
      const NodeId a = overlay.neighbors(0)[0];
      const NodeId b = overlay.neighbors(a)[0];
      history.record_path(0, k, {0, a, b, 19});
    }
  }

  [[nodiscard]] RoutingContext context(DecisionResources* res) const {
    return RoutingContext{overlay, quality, Contract{}, 0, 6, 19, res};
  }
};

}  // namespace

TEST(EdgeQualityCache, HitsReturnBitwiseIdenticalValues) {
  CacheWorld w;
  EdgeQualityCache cache;
  for (int round = 0; round < 3; ++round) {
    for (NodeId s = 0; s < w.overlay.size(); ++s) {
      for (NodeId v : w.overlay.neighbors(s)) {
        for (NodeId pred : {kInvalidNode, NodeId{0}, v}) {
          const double direct = w.quality.edge_quality(s, v, 19, 0, pred, 6);
          const double cached = cache.get_or_compute(w.quality, s, v, 19, 0, pred, 6);
          EXPECT_EQ(direct, cached) << "s=" << s << " v=" << v << " pred=" << pred;
        }
      }
    }
  }
  EXPECT_GT(cache.hits(), cache.misses()) << "repeat rounds should be served from cache";
}

TEST(EdgeQualityCache, HistoryEpochInvalidates) {
  CacheWorld w;
  EdgeQualityCache cache;
  const NodeId s = w.overlay.neighbors(0)[0];
  const NodeId v = w.overlay.neighbors(s)[0];
  const double before = cache.get_or_compute(w.quality, s, v, 19, 0, 0, 6);
  EXPECT_EQ(before, w.quality.edge_quality(s, v, 19, 0, 0, 6));
  // New history at s changes selectivity; the stale cached value must not
  // come back.
  w.history.record_path(0, 6, {0, s, v, 19});
  const double after = cache.get_or_compute(w.quality, s, v, 19, 0, 0, 6);
  EXPECT_EQ(after, w.quality.edge_quality(s, v, 19, 0, 0, 6));
  EXPECT_NE(before, after);
}

TEST(EdgeQualityCache, ProbingEpochInvalidates) {
  CacheWorld w;
  EdgeQualityCache cache;
  const NodeId s = 0;
  const NodeId v = w.overlay.neighbors(s)[0];
  const double before = cache.get_or_compute(w.quality, s, v, 19, 1, kInvalidNode, 2);
  // Let more probe periods elapse: availability estimates move, epochs bump.
  w.simulator.run_until(w.simulator.now() + p2ptest::sim::hours(1.0));
  const double fresh = w.quality.edge_quality(s, v, 19, 1, kInvalidNode, 2);
  EXPECT_EQ(cache.get_or_compute(w.quality, s, v, 19, 1, kInvalidNode, 2), fresh);
  (void)before;
}

TEST(EdgeQualityCache, ConnectionIndexRespected) {
  CacheWorld w;
  EdgeQualityCache cache;
  const NodeId s = w.overlay.neighbors(0)[0];
  const NodeId v = w.overlay.neighbors(s)[0];
  // (pair 0, pred 0) has stored history at s, so sigma depends on k and the
  // cache must not serve k=6 answers for k=11.
  const double k6 = cache.get_or_compute(w.quality, s, v, 19, 0, 0, 6);
  const double k11 = cache.get_or_compute(w.quality, s, v, 19, 0, 0, 11);
  EXPECT_EQ(k6, w.quality.edge_quality(s, v, 19, 0, 0, 6));
  EXPECT_EQ(k11, w.quality.edge_quality(s, v, 19, 0, 0, 11));
  EXPECT_NE(k6, k11);
}

TEST(Lookahead, MemoisedMatchesPlainBitwise) {
  CacheWorld w;
  DecisionResources res;
  const RoutingContext plain = w.context(nullptr);
  const RoutingContext cached = w.context(&res);
  for (NodeId from = 0; from < w.overlay.size(); ++from) {
    for (NodeId pred : {kInvalidNode, NodeId{0}, NodeId{3}}) {
      for (std::uint32_t depth : {1u, 2u, 3u}) {
        const double want = best_onward_quality(plain, from, pred, depth);
        DecisionScope scope(&res);
        const double got = best_onward_quality(cached, from, pred, depth);
        EXPECT_EQ(want, got) << "from=" << from << " pred=" << pred << " depth=" << depth;
      }
    }
  }
}

TEST(Lookahead, Model2UtilityMatchesBitwise) {
  CacheWorld w;
  DecisionResources res;
  const RoutingContext plain = w.context(nullptr);
  const RoutingContext cached = w.context(&res);
  for (NodeId i = 0; i < w.overlay.size(); ++i) {
    for (NodeId j : w.overlay.neighbors(i)) {
      const double want = model2_utility(plain, i, kInvalidNode, j, 3);
      DecisionScope scope(&res);
      const double got = model2_utility(cached, i, kInvalidNode, j, 3);
      EXPECT_EQ(want, got) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Spne, LazySolverMatchesEagerBitwise) {
  CacheWorld w;
  DecisionResources res;
  const RoutingContext plain = w.context(nullptr);
  const RoutingContext cached = w.context(&res);
  SpneRouting spne(3);
  auto stream = w.root.child("spne-picks");
  for (NodeId self = 0; self < w.overlay.size(); ++self) {
    if (self == plain.responder) continue;
    std::vector<NodeId> candidates;
    for (NodeId c : w.overlay.neighbors(self)) {
      if (c != self && w.overlay.is_online(c)) candidates.push_back(c);
    }
    if (candidates.empty()) continue;
    const HopChoice want = spne.choose(plain, self, kInvalidNode, candidates, stream);
    const HopChoice got = spne.choose(cached, self, kInvalidNode, candidates, stream);
    EXPECT_EQ(want.next, got.next) << "self=" << self;
    EXPECT_EQ(want.utility, got.utility) << "self=" << self;
    EXPECT_EQ(want.edge_quality, got.edge_quality) << "self=" << self;
  }
}

TEST(Spne, LazySolverMatchesEagerAtStageZero) {
  CacheWorld w;
  DecisionResources res;
  const RoutingContext plain = w.context(nullptr);
  const RoutingContext cached = w.context(&res);
  SpneRouting spne(0);
  auto stream = w.root.child("spne0-picks");
  const NodeId self = 0;
  std::vector<NodeId> candidates(w.overlay.neighbors(self).begin(),
                                 w.overlay.neighbors(self).end());
  const HopChoice want = spne.choose(plain, self, kInvalidNode, candidates, stream);
  const HopChoice got = spne.choose(cached, self, kInvalidNode, candidates, stream);
  EXPECT_EQ(want.next, got.next);
  EXPECT_EQ(want.utility, got.utility);
  EXPECT_EQ(want.edge_quality, got.edge_quality);
}
