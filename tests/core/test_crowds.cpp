#include "core/crowds.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class CrowdsTest : public ::testing::Test {
 protected:
  void SetUp() override { world.warmup(); }

  std::unique_ptr<CrowdsSession> run(std::uint32_t k, StrategyKind kind = StrategyKind::kRandom,
                                     const char* tag = "crowds") {
    auto session = std::make_unique<CrowdsSession>(kPair, kInitiator, kResponder, Contract{});
    const auto strategy = make_strategy(kind);
    StrategyAssignment assign(world.overlay, *strategy);
    PathBuilder builder(world.overlay, world.quality);
    auto stream = world.root.child(tag);
    for (std::uint32_t j = 0; j < k; ++j) {
      session->run_connection(builder, world.history, assign, ledger, world.overlay, stream);
    }
    return session;
  }

  static constexpr net::PairId kPair = 3;
  static constexpr NodeId kInitiator = 0;
  static constexpr NodeId kResponder = 19;
  p2ptest::StableWorld world{21};
  core::PayoffLedger ledger{20};
};

}  // namespace

TEST_F(CrowdsTest, StablePathReusedWithoutChurn) {
  // The StableWorld has ~100h sessions: the static path never dies, so a
  // session of 15 connections performs exactly one formation.
  auto session = run(15);
  EXPECT_EQ(session->connections_run(), 15u);
  EXPECT_EQ(session->reformations(), 0u);
  // Forwarder set == the distinct nodes of the single path (one node may
  // occupy several positions, so distinct <= positions).
  std::set<NodeId> distinct(session->current_path().nodes.begin() + 1,
                            session->current_path().nodes.end() - 1);
  EXPECT_EQ(session->forwarder_set().size(), distinct.size());
  EXPECT_LE(distinct.size(), session->current_path().forwarder_count());
}

TEST_F(CrowdsTest, PathQualityMaximalWhenStable) {
  // With one static path, L equals the path's position count and ||pi|| its
  // distinct-node count, so Q(pi) = positions / distinct >= 1 — the best any
  // routing can do for a fixed L.
  auto session = run(10);
  if (session->forwarder_set().empty()) GTEST_SKIP() << "degenerate direct path";
  EXPECT_GE(session->path_quality(), 1.0 - 1e-9);
}

TEST_F(CrowdsTest, HistoryRecordedEveryConnection) {
  auto session = run(5);
  const BuiltPath& p = session->current_path();
  if (p.forwarder_count() == 0) GTEST_SKIP() << "direct path";
  const NodeId f1 = p.nodes[1];
  EXPECT_EQ(world.history.at(f1).count(kPair, p.nodes[0], p.nodes[2]), 5u);
}

TEST_F(CrowdsTest, CostsChargedPerConnectionNotPerFormation) {
  auto session = run(8);
  const BuiltPath& p = session->current_path();
  if (p.forwarder_count() == 0) GTEST_SKIP() << "direct path";
  // 8 connections x (positions the node occupies on the static path).
  const NodeId f1 = p.nodes[1];
  std::size_t positions = 0;
  for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
    if (p.nodes[i] == f1) ++positions;
  }
  EXPECT_EQ(ledger.at(f1).forwarding_instances, 8u * positions);
}

TEST(CrowdsChurn, ReformationsUnderChurn) {
  // Real churn: forwarders leave mid-session, forcing reformations and a
  // growing forwarder set — the paper's core problem statement.
  sim::rng::Stream root(5);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 30;
  cfg.degree = 5;
  cfg.churn.session_median = sim::minutes(20.0);  // heavy churn
  cfg.churn.session_min = sim::minutes(5.0);
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());
  core::RandomRouting strategy;
  core::StrategyAssignment assign(overlay, strategy);

  overlay.start();
  simulator.run_until(sim::minutes(60.0));

  core::CrowdsSession session(1, 0, 29, core::Contract{});
  auto stream = root.child("run");
  for (std::uint32_t k = 0; k < 30; ++k) {
    simulator.run_until(simulator.now() + sim::minutes(10.0));
    overlay.force_online(0);
    overlay.force_online(29);
    session.run_connection(builder, history, assign, ledger, overlay, stream);
  }
  EXPECT_GT(session.reformations(), 0u);
  // Each reformation can only grow Q, so quality drops below the stable 1.0.
  EXPECT_LT(session.path_quality(), 1.0);
  EXPECT_GE(session.forwarder_set().size(), session.current_path().forwarder_count());
}

TEST(CrowdsChurn, UtilityFormationShrinksForwarderSetVsRandom) {
  // Even with static paths, forming each new path via utility routing reuses
  // prior forwarders (history) and so grows Q slower than random formation.
  auto run_with = [](core::StrategyKind kind, std::uint64_t seed) {
    sim::rng::Stream root(seed);
    sim::Simulator simulator;
    net::OverlayConfig cfg;
    cfg.node_count = 30;
    cfg.degree = 5;
    cfg.churn.session_median = sim::minutes(20.0);
    cfg.churn.session_min = sim::minutes(5.0);
    net::Overlay overlay(cfg, simulator, root.child("overlay"));
    net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
    core::HistoryStore history(overlay.size());
    core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
    core::PathBuilder builder(overlay, quality);
    core::PayoffLedger ledger(overlay.size());
    const auto strategy = core::make_strategy(kind);
    core::StrategyAssignment assign(overlay, *strategy);
    overlay.start();
    simulator.run_until(sim::minutes(60.0));
    core::CrowdsSession session(1, 0, 29, core::Contract{});
    auto stream = root.child("run");
    for (std::uint32_t k = 0; k < 30; ++k) {
      simulator.run_until(simulator.now() + sim::minutes(10.0));
      overlay.force_online(0);
      overlay.force_online(29);
      session.run_connection(builder, history, assign, ledger, overlay, stream);
    }
    return session.forwarder_set().size();
  };
  std::size_t random_total = 0, utility_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    random_total += run_with(core::StrategyKind::kRandom, seed);
    utility_total += run_with(core::StrategyKind::kUtilityModelI, seed);
  }
  EXPECT_LT(utility_total, random_total);
}
