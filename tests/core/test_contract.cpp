#include "core/contract.hpp"

#include <gtest/gtest.h>

using namespace p2panon::core;

TEST(Contract, RoutingBenefitIsTauTimesForwarding) {
  Contract c;
  c.forwarding_benefit = 80.0;
  c.tau = 0.5;
  EXPECT_DOUBLE_EQ(c.routing_benefit(), 40.0);
  c.tau = 4.0;
  EXPECT_DOUBLE_EQ(c.routing_benefit(), 320.0);
}

TEST(Contract, CrowdsExpectedLengthGeometric) {
  Contract c;
  c.termination = TerminationPolicy::kCrowds;
  c.p_forward = 0.75;
  EXPECT_DOUBLE_EQ(c.expected_path_length(), 4.0);
  c.p_forward = 0.5;
  EXPECT_DOUBLE_EQ(c.expected_path_length(), 2.0);
}

TEST(Contract, HopCountExpectedLengthIsTtl) {
  Contract c;
  c.termination = TerminationPolicy::kHopCount;
  c.ttl_hops = 6;
  EXPECT_DOUBLE_EQ(c.expected_path_length(), 6.0);
}

TEST(Contract, PaperDefaultsAreSane) {
  const Contract c;
  EXPECT_GE(c.forwarding_benefit, 50.0);
  EXPECT_LE(c.forwarding_benefit, 100.0);
  EXPECT_GT(c.p_forward, 0.0);
  EXPECT_LT(c.p_forward, 1.0);
  EXPECT_EQ(c.cid_rotation, 0u);  // rotation is opt-in
}

TEST(QualityWeightsExtra, BoundarySums) {
  EXPECT_TRUE((QualityWeights{1.0, 0.0}.valid()));
  EXPECT_TRUE((QualityWeights{0.0, 1.0}.valid()));
  EXPECT_FALSE((QualityWeights{0.5, 0.6}.valid()));
}
