#include <gtest/gtest.h>

#include <set>

#include "core/incentive.hpp"
#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

ConnectionSetSession make_session(std::uint32_t rotation) {
  Contract c;
  c.cid_rotation = rotation;
  return ConnectionSetSession(/*pair=*/7, /*initiator=*/0, /*responder=*/19, c);
}

}  // namespace

TEST(CidRotation, DisabledKeepsRealPair) {
  auto s = make_session(0);
  for (std::uint32_t k = 1; k <= 40; ++k) {
    EXPECT_EQ(s.effective_pair(k), 7u);
    EXPECT_EQ(s.effective_conn_index(k), k);
  }
}

TEST(CidRotation, FirstEpochKeepsRealPair) {
  auto s = make_session(5);
  for (std::uint32_t k = 1; k <= 5; ++k) EXPECT_EQ(s.effective_pair(k), 7u);
  EXPECT_NE(s.effective_pair(6), 7u);
}

TEST(CidRotation, StableWithinEpochFreshAcrossEpochs) {
  auto s = make_session(5);
  std::set<net::PairId> seen;
  for (std::uint32_t epoch = 0; epoch < 6; ++epoch) {
    const net::PairId first = s.effective_pair(epoch * 5 + 1);
    for (std::uint32_t j = 1; j <= 5; ++j) {
      EXPECT_EQ(s.effective_pair(epoch * 5 + j), first) << "cid changed mid-epoch";
    }
    EXPECT_TRUE(seen.insert(first).second) << "epoch cid repeated";
  }
}

TEST(CidRotation, EpochLocalIndexResets) {
  auto s = make_session(4);
  EXPECT_EQ(s.effective_conn_index(1), 1u);
  EXPECT_EQ(s.effective_conn_index(4), 4u);
  EXPECT_EQ(s.effective_conn_index(5), 1u);
  EXPECT_EQ(s.effective_conn_index(9), 1u);
  EXPECT_EQ(s.effective_conn_index(12), 4u);
}

TEST(CidRotation, DistinctPairsGetDistinctEpochCids) {
  Contract c;
  c.cid_rotation = 3;
  ConnectionSetSession a(1, 0, 19, c), b(2, 0, 19, c);
  EXPECT_NE(a.effective_pair(4), b.effective_pair(4));
}

TEST(CidRotation, HistoryRecordedUnderWireCid) {
  p2ptest::StableWorld world(51);
  world.warmup();
  Contract c;
  c.cid_rotation = 3;
  ConnectionSetSession session(7, 0, 19, c);
  UtilityModelIRouting strategy;
  StrategyAssignment assign(world.overlay, strategy);
  PathBuilder builder(world.overlay, world.quality);
  PayoffLedger ledger(world.overlay.size());
  auto stream = world.root.child("run");
  for (std::uint32_t k = 1; k <= 6; ++k) {
    session.run_connection(builder, world.history, assign, ledger, world.overlay, stream);
  }
  // Entries exist under both epoch cids and none under anything else for a
  // forwarder on the first path.
  const BuiltPath& first = session.paths().front();
  if (first.forwarder_count() == 0) GTEST_SKIP() << "direct path";
  const NodeId f1 = first.nodes[1];
  const auto& entries = world.history.at(f1).entries();
  ASSERT_FALSE(entries.empty());
  const net::PairId epoch0 = session.effective_pair(1);
  const net::PairId epoch1 = session.effective_pair(4);
  for (const HistoryEntry& e : entries) {
    EXPECT_TRUE(e.pair == epoch0 || e.pair == epoch1) << "entry under unexpected cid";
    EXPECT_LE(e.conn_index, 3u);  // epoch-local indices only
  }
}

TEST(CidRotation, SettlementStillBalancesWithRotation) {
  p2ptest::StableWorld world(52);
  world.warmup();
  payment::Bank bank(sim::rng::Stream(52).child("bank"));
  payment::SettlementEngine engine(bank);
  auto keys = world.root.child("keys");
  for (NodeId id = 0; id < world.overlay.size(); ++id) {
    bank.open_account(id, payment::from_credits(1.0e7), keys.next_u64());
  }
  Contract c;
  c.cid_rotation = 2;
  ConnectionSetSession session(7, 0, 19, c);
  UtilityModelIRouting strategy;
  StrategyAssignment assign(world.overlay, strategy);
  PathBuilder builder(world.overlay, world.quality);
  PayoffLedger ledger(world.overlay.size());
  auto stream = world.root.child("run");
  for (std::uint32_t k = 1; k <= 6; ++k) {
    session.run_connection(builder, world.history, assign, ledger, world.overlay, stream);
  }
  const payment::Amount before = bank.total_money() + bank.outstanding_coin_value();
  auto settle_stream = world.root.child("settle");
  const SettleOutcome out = session.settle(bank, engine, ledger, world.overlay, settle_stream);
  EXPECT_EQ(bank.total_money() + bank.outstanding_coin_value(), before);
  EXPECT_EQ(out.report.paid_out + out.report.refunded, out.report.escrow_in);
  EXPECT_GT(out.report.accepted_claims, 0u);
}

TEST(CidRotation, RotationGrowsForwarderSet) {
  // The trade-off: rotating cids resets selectivity, so the forwarder set
  // should be at least as large as without rotation.
  auto run_with = [](std::uint32_t rotation) {
    p2ptest::StableWorld world(53);
    world.warmup();
    Contract c;
    c.cid_rotation = rotation;
    ConnectionSetSession session(7, 0, 19, c);
    UtilityModelIRouting strategy;
    StrategyAssignment assign(world.overlay, strategy);
    PathBuilder builder(world.overlay, world.quality);
    PayoffLedger ledger(world.overlay.size());
    auto stream = world.root.child("run");
    for (std::uint32_t k = 1; k <= 20; ++k) {
      session.run_connection(builder, world.history, assign, ledger, world.overlay, stream);
    }
    return session.forwarder_set().size();
  };
  EXPECT_LE(run_with(0), run_with(1));
}
