// Shared test fixtures assembling overlay + probing + history + quality for
// core-library tests.
#pragma once

#include "core/edge_quality.hpp"
#include "core/history.hpp"
#include "core/path.hpp"
#include "core/routing.hpp"
#include "net/overlay.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace p2ptest {

namespace net = p2panon::net;
namespace core = p2panon::core;
namespace sim = p2panon::sim;

/// A stable, fully-warmed small world: 20 nodes, degree 4, negligible churn;
/// everything online after warmup().
struct StableWorld {
  explicit StableWorld(std::uint64_t seed = 1, double malicious_fraction = 0.0,
                       std::size_t node_count = 20, std::size_t degree = 4)
      : root(seed),
        overlay(make_config(malicious_fraction, node_count, degree), simulator,
                root.child("overlay")),
        probing(overlay, net::ProbingConfig{}, root.child("probing")),
        history(overlay.size()),
        quality(probing, history, core::QualityWeights{}) {}

  static net::OverlayConfig make_config(double malicious, std::size_t n, std::size_t d) {
    net::OverlayConfig cfg;
    cfg.node_count = n;
    cfg.degree = d;
    cfg.malicious_fraction = malicious;
    cfg.churn.join_interarrival_mean = sim::minutes(0.2);
    cfg.churn.session_min = sim::hours(90.0);
    cfg.churn.session_median = sim::hours(100.0);
    cfg.churn.session_max = sim::hours(200.0);
    cfg.churn.departure_probability = 0.0;
    return cfg;
  }

  /// Start the overlay and run long enough for everyone to join and probing
  /// to accumulate observations.
  void warmup(sim::Time horizon = sim::hours(2.0)) {
    overlay.start();
    simulator.run_until(horizon);
  }

  sim::rng::Stream root;
  sim::Simulator simulator;
  net::Overlay overlay;
  net::ProbingEstimator probing;
  core::HistoryStore history;
  core::EdgeQualityEvaluator quality;
};

}  // namespace p2ptest
