#include "core/edge_quality.hpp"

#include <gtest/gtest.h>

#include "fixtures.hpp"

using namespace p2panon;
using namespace p2panon::core;
using net::NodeId;

namespace {

class EdgeQualityTest : public ::testing::Test {
 protected:
  void SetUp() override { world.warmup(); }
  p2ptest::StableWorld world{1};
};

}  // namespace

TEST_F(EdgeQualityTest, LastHopToResponderIsOne) {
  const NodeId s = 0;
  const NodeId responder = 5;
  EXPECT_DOUBLE_EQ(world.quality.edge_quality(s, responder, responder, 0, net::kInvalidNode, 1),
                   1.0);
}

TEST_F(EdgeQualityTest, QualityInUnitInterval) {
  for (NodeId s = 0; s < world.overlay.size(); ++s) {
    for (NodeId v : world.overlay.neighbors(s)) {
      const double q = world.quality.edge_quality(s, v, 19, 0, net::kInvalidNode, 1);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
}

TEST_F(EdgeQualityTest, NoHistoryMeansAvailabilityOnly) {
  const NodeId s = 0;
  const NodeId v = world.overlay.neighbors(s)[0];
  // w_s = w_a = 0.5 and sigma = 0: q = 0.5 * alpha.
  const double expected = 0.5 * world.probing.availability(s, v);
  EXPECT_DOUBLE_EQ(world.quality.edge_quality(s, v, 19, 0, net::kInvalidNode, 1), expected);
}

TEST_F(EdgeQualityTest, HistoryRaisesQuality) {
  const NodeId s = 0;
  const NodeId v = world.overlay.neighbors(s)[0];
  const double before = world.quality.edge_quality(s, v, 19, 3, net::kInvalidNode, 5);
  for (std::uint32_t k = 1; k <= 4; ++k) {
    world.history.at(s).record({3, k, net::kInvalidNode, v});
  }
  const double after = world.quality.edge_quality(s, v, 19, 3, net::kInvalidNode, 5);
  EXPECT_GT(after, before);
  EXPECT_NEAR(after - before, 0.5 * 1.0, 1e-12);  // sigma went 0 -> 1
}

TEST_F(EdgeQualityTest, WeightsShiftEmphasis) {
  const NodeId s = 0;
  const NodeId v = world.overlay.neighbors(s)[0];
  world.history.at(s).record({3, 1, net::kInvalidNode, v});

  EdgeQualityEvaluator selective(world.probing, world.history, QualityWeights{1.0, 0.0});
  EdgeQualityEvaluator available(world.probing, world.history, QualityWeights{0.0, 1.0});
  // Pure selectivity at k = 2: sigma = 1/1 = 1.
  EXPECT_DOUBLE_EQ(selective.edge_quality(s, v, 19, 3, net::kInvalidNode, 2), 1.0);
  // Pure availability: equals alpha.
  EXPECT_DOUBLE_EQ(available.edge_quality(s, v, 19, 3, net::kInvalidNode, 2),
                   world.probing.availability(s, v));
}

TEST_F(EdgeQualityTest, PathQualitySumsEdges) {
  // Path 0 -> n0 -> 19 (n0 a neighbour of 0): quality = q(0, n0) + 1.
  const NodeId n0 = world.overlay.neighbors(0)[0];
  const std::vector<NodeId> path{0, n0, 19};
  const double q0 = world.quality.edge_quality(0, n0, 19, 4, net::kInvalidNode, 1);
  EXPECT_NEAR(world.quality.path_quality(path, 4, 1), q0 + 1.0, 1e-12);
}

TEST_F(EdgeQualityTest, DirectPathQualityIsOne) {
  const std::vector<NodeId> path{0, 19};
  EXPECT_DOUBLE_EQ(world.quality.path_quality(path, 4, 1), 1.0);
}

TEST(QualityWeights, Validation) {
  EXPECT_TRUE(QualityWeights{}.valid());
  EXPECT_TRUE((QualityWeights{0.3, 0.7}.valid()));
  EXPECT_FALSE((QualityWeights{0.3, 0.3}.valid()));
  EXPECT_FALSE((QualityWeights{-0.2, 1.2}.valid()));
}
