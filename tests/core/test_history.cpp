#include "core/history.hpp"

#include <gtest/gtest.h>

using namespace p2panon::core;
using p2panon::net::NodeId;
using p2panon::net::PairId;

TEST(HistoryProfile, EmptyHasZeroSelectivity) {
  HistoryProfile h;
  EXPECT_EQ(h.size(), 0u);
  EXPECT_DOUBLE_EQ(h.selectivity(1, 2, 3, 5), 0.0);
  EXPECT_EQ(h.count(1, 2, 3), 0u);
}

TEST(HistoryProfile, RecordAndCount) {
  HistoryProfile h;
  h.record({1, 1, 10, 20});
  h.record({1, 2, 10, 20});
  h.record({1, 3, 10, 30});
  EXPECT_EQ(h.count(1, 10, 20), 2u);
  EXPECT_EQ(h.count(1, 10, 30), 1u);
  EXPECT_EQ(h.size(), 3u);
}

TEST(HistoryProfile, SelectivityDefinition) {
  HistoryProfile h;
  // Connections 1..4 all used successor 20 from predecessor 10.
  for (std::uint32_t k = 1; k <= 4; ++k) h.record({7, k, 10, 20});
  // For connection k = 5: sigma = 4 / (5-1) = 1.
  EXPECT_DOUBLE_EQ(h.selectivity(7, 10, 20, 5), 1.0);
  // For connection k = 9: sigma = 4 / 8 = 0.5.
  EXPECT_DOUBLE_EQ(h.selectivity(7, 10, 20, 9), 0.5);
}

TEST(HistoryProfile, FirstConnectionHasNoHistory) {
  HistoryProfile h;
  h.record({7, 1, 10, 20});
  EXPECT_DOUBLE_EQ(h.selectivity(7, 10, 20, 1), 0.0);
}

TEST(HistoryProfile, KeyedByPredecessor) {
  // The same successor reached from different predecessors is a different
  // edge position (paper: a node differentiates positions on the same path).
  HistoryProfile h;
  h.record({7, 1, 10, 20});
  h.record({7, 2, 11, 20});
  EXPECT_EQ(h.count(7, 10, 20), 1u);
  EXPECT_EQ(h.count(7, 11, 20), 1u);
  EXPECT_DOUBLE_EQ(h.selectivity(7, 10, 20, 3), 0.5);
}

TEST(HistoryProfile, KeyedByPair) {
  HistoryProfile h;
  h.record({7, 1, 10, 20});
  h.record({8, 1, 10, 20});
  EXPECT_EQ(h.count(7, 10, 20), 1u);
  EXPECT_EQ(h.count(8, 10, 20), 1u);
}

TEST(HistoryProfile, BoundedCapacityEvictsFifo) {
  HistoryProfile h(3);
  h.record({1, 1, 10, 20});
  h.record({1, 2, 10, 21});
  h.record({1, 3, 10, 22});
  h.record({1, 4, 10, 23});  // evicts (10, 20)
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.count(1, 10, 20), 0u);
  EXPECT_EQ(h.count(1, 10, 23), 1u);
}

TEST(HistoryProfile, EvictionDecrementsSharedCount) {
  HistoryProfile h(2);
  h.record({1, 1, 10, 20});
  h.record({1, 2, 10, 20});
  EXPECT_EQ(h.count(1, 10, 20), 2u);
  h.record({1, 3, 10, 21});  // evicts one (10, 20)
  EXPECT_EQ(h.count(1, 10, 20), 1u);
}

TEST(HistoryProfile, ClearResets) {
  HistoryProfile h;
  h.record({1, 1, 10, 20});
  h.clear();
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.count(1, 10, 20), 0u);
}

TEST(HistoryStore, RecordPathStoresPredecessorSuccessor) {
  HistoryStore store(6);
  // Path 0 -> 2 -> 3 -> 5 for pair 9, connection 1.
  store.record_path(9, 1, {0, 2, 3, 5});
  EXPECT_EQ(store.at(2).count(9, 0, 3), 1u);
  EXPECT_EQ(store.at(3).count(9, 2, 5), 1u);
  // Endpoints store nothing.
  EXPECT_EQ(store.at(0).size(), 0u);
  EXPECT_EQ(store.at(5).size(), 0u);
  EXPECT_EQ(store.total_entries(), 2u);
}

TEST(HistoryStore, DirectPathStoresNothing) {
  HistoryStore store(4);
  store.record_path(1, 1, {0, 3});
  EXPECT_EQ(store.total_entries(), 0u);
}

TEST(HistoryStore, RepeatedForwarderGetsBothPositions) {
  HistoryStore store(5);
  // 0 -> 1 -> 2 -> 1 -> 4: node 1 stores two entries with distinct preds.
  store.record_path(3, 1, {0, 1, 2, 1, 4});
  EXPECT_EQ(store.at(1).count(3, 0, 2), 1u);
  EXPECT_EQ(store.at(1).count(3, 2, 4), 1u);
  EXPECT_EQ(store.at(2).count(3, 1, 1), 1u);
}

TEST(HistoryStore, AccumulatesAcrossConnections) {
  HistoryStore store(5);
  for (std::uint32_t k = 1; k <= 10; ++k) store.record_path(1, k, {0, 2, 4});
  EXPECT_EQ(store.at(2).count(1, 0, 4), 10u);
  EXPECT_DOUBLE_EQ(store.at(2).selectivity(1, 0, 4, 11), 1.0);
}

TEST(HistoryProfile, PositionCountSumsOverSuccessors) {
  HistoryProfile h;
  EXPECT_EQ(h.position_count(1, 10), 0u);
  h.record({1, 1, 10, 20});
  h.record({1, 2, 10, 21});
  h.record({1, 3, 11, 20});
  h.record({2, 1, 10, 20});  // different pair: separate denominator
  EXPECT_EQ(h.position_count(1, 10), 2u);
  EXPECT_EQ(h.position_count(1, 11), 1u);
  EXPECT_EQ(h.position_count(2, 10), 1u);
  EXPECT_EQ(h.position_count(2, 11), 0u);
}

TEST(HistoryProfile, PositionCountTracksEviction) {
  HistoryProfile h(2);
  h.record({1, 1, 10, 20});
  h.record({1, 2, 10, 21});
  EXPECT_EQ(h.position_count(1, 10), 2u);
  h.record({1, 3, 11, 22});  // evicts (10, 20)
  EXPECT_EQ(h.position_count(1, 10), 1u);
  h.record({1, 4, 11, 23});  // evicts (10, 21)
  EXPECT_EQ(h.position_count(1, 10), 0u);
  EXPECT_EQ(h.position_count(1, 11), 2u);
  h.clear();
  EXPECT_EQ(h.position_count(1, 11), 0u);
}

TEST(HistoryProfile, EpochBumpsOnEveryMutation) {
  HistoryProfile h(2);
  const std::uint64_t e0 = h.epoch();
  h.record({1, 1, 10, 20});
  const std::uint64_t e1 = h.epoch();
  EXPECT_GT(e1, e0);
  h.record({1, 2, 10, 21});
  const std::uint64_t e2 = h.epoch();
  EXPECT_GT(e2, e1);
  h.record({1, 3, 10, 22});  // record + FIFO eviction
  const std::uint64_t e3 = h.epoch();
  EXPECT_GT(e3, e2);
  h.clear();
  EXPECT_GT(h.epoch(), e3);
}

TEST(HistoryProfile, EpochStableAcrossReads) {
  HistoryProfile h;
  h.record({1, 1, 10, 20});
  const std::uint64_t e = h.epoch();
  (void)h.count(1, 10, 20);
  (void)h.position_count(1, 10);
  (void)h.selectivity(1, 10, 20, 5);
  EXPECT_EQ(h.epoch(), e);
}
