// Wire-codec round-trip and malformed-frame tests.
//
// Separate binary: like test_alloc_guard, it replaces the global allocation
// functions with counting wrappers to pin the codec's reject path at zero
// heap traffic — a hostile peer spraying garbage frames must not be able to
// make the receiver allocate (let alone crash), so every verdict in the
// malformed corpus is decoded once more inside a counted window.
#include "transport/crc32.hpp"
#include "transport/wire_codec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t n) {
  note_allocation();
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned(std::size_t n, std::size_t align) {
  note_allocation();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return checked_malloc(n); }
void* operator new[](std::size_t n) { return checked_malloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace p2panon;
using namespace p2panon::transport;

/// One representative instance per message type, every field non-default so
/// a dropped or reordered field cannot round-trip by accident.
std::vector<wire::WireMessage> sample_messages() {
  payment::ForwardReceipt receipt;
  receipt.pair = 11;
  receipt.conn_index = 3;
  receipt.forwarder = 42;
  receipt.predecessor = 41;
  receipt.successor = 43;
  receipt.mac = 0xDEADBEEFCAFEF00Dull;

  std::vector<wire::WireMessage> msgs;
  msgs.push_back(wire::LegMsg{7, 2, 5, 0x123456789ABCDEF0ull, 1, 10, 11, 4, 2});
  msgs.push_back(wire::AckMsg{7, 2, 0x123456789ABCDEF0ull});
  msgs.push_back(wire::NackMsg{7, 2, 5});
  msgs.push_back(wire::DataMsg{7, 2, 9, 0xFEDCBA9876543210ull, 3, 1});
  msgs.push_back(wire::ClaimMsg{17, 42, receipt});
  msgs.push_back(wire::ClaimReplyMsg{2});
  msgs.push_back(wire::CloseMsg{17});
  msgs.push_back(wire::CloseReplyMsg{1});
  msgs.push_back(wire::OpenSettlementMsg{
      11, 9, 5000, 40, 25, {wire::WirePathRecord{0, 1, 5, {2, 3, 4}},
                            wire::WirePathRecord{1, 1, 5, {6}}}});
  msgs.push_back(wire::OpenReplyMsg{1, 17});
  msgs.push_back(wire::ContractMsg{17, 40001, receipt});
  msgs.push_back(wire::ContractAckMsg{17});
  msgs.push_back(wire::HelloMsg{42});
  msgs.push_back(wire::HelloReplyMsg{9, 0xA5A5A5A5A5A5A5A5ull, 100000});
  msgs.push_back(wire::SetupMsg{11, 3, 1, {1, 2, 3, 4, 5}});
  msgs.push_back(wire::SetupAckMsg{11, 3});
  msgs.push_back(wire::HeartbeatMsg{0x1111222233334444ull});
  msgs.push_back(wire::HeartbeatAckMsg{0x1111222233334444ull});
  msgs.push_back(wire::ByeMsg{40002});
  msgs.push_back(wire::SweepMsg{1});
  msgs.push_back(wire::SweepReplyMsg{13});
  return msgs;
}

std::vector<std::byte> encode_one(const wire::WireMessage& m) {
  std::vector<std::byte> buf;
  const std::size_t n = encode(m, buf);
  EXPECT_EQ(n, buf.size());
  EXPECT_GE(n, kFrameOverhead);
  return buf;
}

std::uint32_t read_le32(const std::vector<std::byte>& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) | (static_cast<std::uint32_t>(b[at + 1]) << 8) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

std::uint16_t read_le16(const std::vector<std::byte>& b, std::size_t at) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[at]) |
                                    (static_cast<std::uint16_t>(b[at + 1]) << 8));
}

void write_le16(std::vector<std::byte>& b, std::size_t at, std::uint16_t v) {
  b[at] = static_cast<std::byte>(v & 0xFF);
  b[at + 1] = static_cast<std::byte>(v >> 8);
}

void write_le32(std::vector<std::byte>& b, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b[at + i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

/// Recompute the trailing CRC after the test patched header/payload bytes —
/// isolates the verdict under test from a cascading kBadCrc.
void fix_crc(std::vector<std::byte>& frame) {
  const std::uint32_t crc =
      crc32(std::span<const std::byte>{frame.data(), frame.size() - 4});
  write_le32(frame, frame.size() - 4, crc);
}

// --- Round-trip bit-exactness ------------------------------------------------

TEST(WireCodec, RoundTripsEveryMessageTypeBitExactly) {
  for (const wire::WireMessage& m : sample_messages()) {
    SCOPED_TRACE("type " + std::to_string(static_cast<int>(wire::type_of(m))));
    const std::vector<std::byte> frame = encode_one(m);

    wire::WireMessage decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(decode(frame, decoded, consumed), DecodeResult::kOk);
    EXPECT_EQ(consumed, frame.size());
    EXPECT_EQ(decoded, m) << "decoded message differs from the encoded one";

    // Re-encoding the decoded message must reproduce the frame byte for
    // byte — the codec is a bijection on its value set.
    const std::vector<std::byte> again = encode_one(decoded);
    EXPECT_EQ(again, frame);
  }
}

TEST(WireCodec, HeaderLayoutIsPinned) {
  const std::vector<std::byte> frame = encode_one(wire::HeartbeatMsg{0xABCDull});
  EXPECT_EQ(read_le32(frame, 0), kWireMagic);
  EXPECT_EQ(read_le16(frame, 4), kWireVersion);
  EXPECT_EQ(read_le16(frame, 6), static_cast<std::uint16_t>(wire::MsgType::kHeartbeat));
  EXPECT_EQ(read_le32(frame, 8), frame.size() - kFrameOverhead);  // payload length
  const std::uint32_t crc =
      crc32(std::span<const std::byte>{frame.data(), frame.size() - 4});
  EXPECT_EQ(read_le32(frame, frame.size() - 4), crc);
}

TEST(WireCodec, EncodeAppendsForStreaming) {
  std::vector<std::byte> buf;
  const std::size_t first = encode(wire::CloseMsg{17}, buf);
  const std::size_t second = encode(wire::SweepMsg{1}, buf);
  ASSERT_EQ(buf.size(), first + second);

  wire::WireMessage m;
  std::size_t consumed = 0;
  ASSERT_EQ(decode(buf, m, consumed), DecodeResult::kOk);
  EXPECT_EQ(consumed, first);
  EXPECT_EQ(m, wire::WireMessage{wire::CloseMsg{17}});
  ASSERT_EQ(decode(std::span<const std::byte>{buf}.subspan(consumed), m, consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, second);
  EXPECT_EQ(m, wire::WireMessage{wire::SweepMsg{1}});
}

// --- Malformed-frame corpus --------------------------------------------------

struct MalformedCase {
  const char* name;
  std::vector<std::byte> bytes;
  DecodeResult want;
  std::size_t want_consumed;  ///< 0 = unresynchronisable
};

std::vector<MalformedCase> malformed_corpus() {
  const std::vector<std::byte> good = [] {
    std::vector<std::byte> b;
    encode(wire::AckMsg{7, 2, 99}, b);
    return b;
  }();

  std::vector<MalformedCase> corpus;

  // Truncated header: fewer bytes than the fixed header.
  corpus.push_back({"truncated-header",
                    {good.begin(), good.begin() + static_cast<long>(kHeaderSize) - 1},
                    DecodeResult::kTruncated, 0});

  // Truncated frame: full header, payload cut short.
  corpus.push_back({"truncated-frame", {good.begin(), good.end() - 5},
                    DecodeResult::kTruncated, 0});

  // Bad magic: the stream is garbage; no resync is possible.
  {
    std::vector<std::byte> b = good;
    b[0] = static_cast<std::byte>(0x00);
    corpus.push_back({"bad-magic", std::move(b), DecodeResult::kBadMagic, 0});
  }

  // Oversize: declared length exceeds max_frame; header untrusted.
  {
    std::vector<std::byte> b = good;
    write_le32(b, 8, static_cast<std::uint32_t>(kDefaultMaxFrame) + 1);
    fix_crc(b);
    corpus.push_back({"oversize", std::move(b), DecodeResult::kOversize, 0});
  }

  // Future version: version gate fires before the CRC check by contract (a
  // future version may change the checksum algorithm, never the header), so
  // the CRC is deliberately NOT fixed up here.
  {
    std::vector<std::byte> b = good;
    write_le16(b, 4, kWireVersion + 1);
    corpus.push_back({"future-version", std::move(b), DecodeResult::kFutureVersion,
                      good.size()});
  }

  // Bad CRC: one payload bit flipped.
  {
    std::vector<std::byte> b = good;
    b[kHeaderSize] ^= static_cast<std::byte>(0x01);
    corpus.push_back({"bad-crc", std::move(b), DecodeResult::kBadCrc, good.size()});
  }

  // Unknown type at this version (frame otherwise intact).
  {
    std::vector<std::byte> b = good;
    write_le16(b, 6, 999);
    fix_crc(b);
    corpus.push_back({"unknown-type", std::move(b), DecodeResult::kUnknownType, good.size()});
  }

  // Bad length: valid frame whose payload is one byte longer than AckMsg
  // parses — decode must consume the whole declared frame and move on.
  {
    std::vector<std::byte> b = good;
    b.insert(b.end() - 4, static_cast<std::byte>(0));
    write_le32(b, 8, read_le32(b, 8) + 1);
    fix_crc(b);
    corpus.push_back({"bad-length", std::move(b), DecodeResult::kBadLength, good.size() + 1});
  }

  return corpus;
}

TEST(WireCodec, MalformedCorpusIsRejectedWithTheContractedVerdicts) {
  for (const MalformedCase& c : malformed_corpus()) {
    SCOPED_TRACE(c.name);
    wire::WireMessage out;
    std::size_t consumed = 0xFFFF;  // decode must overwrite, even on reject
    EXPECT_EQ(decode(c.bytes, out, consumed), c.want) << to_string(c.want);
    EXPECT_EQ(consumed, c.want_consumed);
  }
}

TEST(WireCodec, RejectPathDoesNotAllocate) {
  // Warm-up pass (also pre-faults any lazy allocator state), then the same
  // corpus decoded inside a counted window. No gtest assertions inside the
  // window — they allocate.
  const std::vector<MalformedCase> corpus = malformed_corpus();
  wire::WireMessage out;
  std::size_t consumed = 0;
  for (const MalformedCase& c : corpus) (void)decode(c.bytes, out, consumed);

  g_allocations.store(0);
  g_counting.store(true);
  for (const MalformedCase& c : corpus) (void)decode(c.bytes, out, consumed);
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u) << "rejecting a malformed frame heap-allocated";
}

TEST(WireCodec, SkipsDamagedFrameAndDecodesTheNext) {
  // A skippable verdict (kBadCrc) followed by an intact frame: advancing by
  // `consumed` must land exactly on the next frame.
  std::vector<std::byte> buf;
  encode(wire::NackMsg{7, 2, 5}, buf);
  buf[kHeaderSize] ^= static_cast<std::byte>(0x01);
  const std::size_t first = buf.size();
  encode(wire::HeartbeatAckMsg{77}, buf);

  wire::WireMessage m;
  std::size_t consumed = 0;
  ASSERT_EQ(decode(buf, m, consumed), DecodeResult::kBadCrc);
  ASSERT_EQ(consumed, first);
  ASSERT_EQ(decode(std::span<const std::byte>{buf}.subspan(consumed), m, consumed),
            DecodeResult::kOk);
  EXPECT_EQ(m, wire::WireMessage{wire::HeartbeatAckMsg{77}});
}

TEST(WireCodec, EmptyBufferIsTruncatedNotAnError) {
  wire::WireMessage m;
  std::size_t consumed = 7;
  EXPECT_EQ(decode(std::span<const std::byte>{}, m, consumed), DecodeResult::kTruncated);
  EXPECT_EQ(consumed, 0u);
}

TEST(WireCodec, SetupPathBoundIsEnforced) {
  // A SetupMsg whose path exceeds kMaxWirePath must not round-trip: the
  // decoder rejects the frame (kBadLength) instead of reserving unbounded
  // memory off a hostile count field.
  wire::SetupMsg big;
  big.pair = 1;
  big.conn_index = 0;
  big.hop = 0;
  big.path.assign(wire::kMaxWirePath + 1, 3);
  std::vector<std::byte> buf;
  encode(wire::WireMessage{big}, buf);

  wire::WireMessage m;
  std::size_t consumed = 0;
  EXPECT_EQ(decode(buf, m, consumed), DecodeResult::kBadLength);
  EXPECT_EQ(consumed, buf.size());
}

TEST(WireCodec, CrcMatchesTheIeeeReference) {
  // Pin the CRC polynomial/reflection against the canonical check value:
  // CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  std::vector<std::byte> bytes(9);
  std::memcpy(bytes.data(), s, 9);
  EXPECT_EQ(crc32(std::span<const std::byte>{bytes}), 0xCBF43926u);
}

}  // namespace
