// Loopback tests for the multi-process TCP backend.
//
// Socket hygiene (the rules that keep these tests green on any CI host):
// every port is kernel-assigned (listen(0)), every test skips cleanly when
// the sandbox refuses socket(2), and the binary carries an explicit ctest
// TIMEOUT well under the suite default so a wedged poll loop fails fast
// instead of hanging the run (tests/CMakeLists.txt).
//
// The raw-socket calls below are the *attacker*: they inject bytes the
// TcpTransport API could never produce, which is exactly the hostile-peer
// surface the codec contract pins. They carry lint-exempt(transport)
// waivers because production code must go through src/transport (rule R9).
#include "transport/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

namespace {

using namespace p2panon;
using namespace p2panon::transport;

TcpConfig fast_config() {
  TcpConfig cfg;
  cfg.connect_backoff_base = 0.01;
  cfg.connect_backoff_cap = 0.05;
  cfg.connect_max_attempts = 3;
  cfg.read_deadline = 2.0;
  cfg.heartbeat_period = 0.05;
  cfg.heartbeat_timeout = 0.4;
  return cfg;
}

#define SKIP_WITHOUT_SOCKETS()                                        \
  if (!TcpTransport::sockets_available()) {                           \
    GTEST_SKIP() << "sandbox refuses socket(2); skipping TCP tests";  \
  }

/// Minimal raw TCP client for injecting arbitrary bytes (the hostile peer).
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    // lint-exempt(transport): test attacker injects raw bytes on purpose
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    // lint-exempt(transport): test attacker dials the victim directly
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  void send_bytes(const std::vector<std::byte>& bytes) {
    // lint-exempt(transport): test attacker writes malformed frames
    (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  /// True if the peer closed the connection within `wait_ms`.
  bool peer_closed(int wait_ms) {
    pollfd p{fd_, POLLIN, 0};
    if (::poll(&p, 1, wait_ms) <= 0) return false;
    std::byte buf[64];
    // lint-exempt(transport): test attacker observes the victim's FIN
    return ::recv(fd_, buf, sizeof(buf), 0) == 0;
  }

 private:
  int fd_ = -1;
};

/// Pump `t` until `done()` or ~`seconds` of wall time passed.
template <typename Pred>
bool pump_until(TcpTransport& t, Pred done, double seconds = 2.0) {
  for (int i = 0; i < static_cast<int>(seconds / 0.01); ++i) {
    if (done()) return true;
    t.pump(0.01);
  }
  return done();
}

TEST(TcpTransport, ListenBindsAnEphemeralPort) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport t(fast_config(), sim::rng::Stream(1));
  const std::uint16_t port = t.listen(0);
  ASSERT_NE(port, 0);
  EXPECT_EQ(t.port(), port);
}

TEST(TcpTransport, OnewayFrameIsDeliveredToTheHandler) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport a(fast_config(), sim::rng::Stream(1));
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(a.listen(0), 0);
  ASSERT_NE(b.listen(0), 0);

  std::vector<wire::WireMessage> received;
  b.set_handler([&received](const wire::WireMessage& m) {
    received.push_back(m);
    return std::nullopt;
  });

  ASSERT_TRUE(a.send_oneway(b.port(), wire::CloseMsg{17}));
  ASSERT_TRUE(pump_until(b, [&received] { return !received.empty(); }));
  EXPECT_EQ(received.front(), wire::WireMessage{wire::CloseMsg{17}});
  EXPECT_GE(a.counters().frames_sent, 1u);
  EXPECT_GE(a.counters().frames_delivered, 1u);
  EXPECT_EQ(b.counters().frames_rejected, 0u);
}

TEST(TcpTransport, RequestReplyRoundTripsWhilePeerPumps) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport a(fast_config(), sim::rng::Stream(1));
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(a.listen(0), 0);
  ASSERT_NE(b.listen(0), 0);

  b.set_handler([](const wire::WireMessage& m) -> std::optional<wire::WireMessage> {
    if (const auto* c = std::get_if<wire::CloseMsg>(&m)) {
      return wire::CloseReplyMsg{static_cast<std::uint8_t>(c->sid == 17 ? 1 : 0)};
    }
    return std::nullopt;
  });

  // b lives on its own thread, as a real peer process would; it is touched
  // by exactly one thread at a time (handler/listen configured before the
  // thread starts, counters read after join).
  std::atomic<bool> done{false};
  std::thread pumper([&b, &done] {
    while (!done.load()) b.pump(0.01);
  });

  const std::optional<wire::WireMessage> reply = a.request(b.port(), wire::CloseMsg{17});
  done.store(true);
  pumper.join();

  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, wire::WireMessage{wire::CloseReplyMsg{1}});
  EXPECT_EQ(a.counters().deadline_expiries, 0u);
}

TEST(TcpTransport, RequestDeadlineExpiresAgainstASilentPeer) {
  SKIP_WITHOUT_SOCKETS();
  TcpConfig cfg = fast_config();
  cfg.read_deadline = 0.2;
  TcpTransport a(cfg, sim::rng::Stream(1));
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(b.listen(0), 0);
  // b listens but never pumps: the kernel accepts the connection into the
  // backlog, the frame lands in a buffer nobody reads, and no reply ever
  // comes — request() must give up at the deadline, not hang.
  const std::optional<wire::WireMessage> reply = a.request(b.port(), wire::CloseMsg{1});
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(a.counters().deadline_expiries, 1u);
}

TEST(TcpTransport, DialFailureBacksOffThenGivesUp) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport a(fast_config(), sim::rng::Stream(1));
  // A port with (almost certainly) no listener: bind one, learn the port,
  // close it again so connect() gets RST.
  TcpTransport probe(fast_config(), sim::rng::Stream(2));
  const std::uint16_t dead_port = probe.listen(0);
  ASSERT_NE(dead_port, 0);
  probe.shutdown();

  EXPECT_FALSE(a.send_oneway(dead_port, wire::CloseMsg{1}));
  EXPECT_EQ(a.counters().backoff_retries,
            static_cast<std::uint64_t>(fast_config().connect_max_attempts - 1));
  EXPECT_GE(a.counters().frames_dropped, 1u);
}

TEST(TcpTransport, MalformedFramesAreCountedAndTheStreamContinues) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(b.listen(0), 0);
  std::vector<wire::WireMessage> received;
  b.set_handler([&received](const wire::WireMessage& m) {
    received.push_back(m);
    return std::nullopt;
  });

  // One frame with a flipped payload bit (bad CRC, skippable) followed by
  // an intact frame on the same connection: the victim must count the first
  // and deliver the second.
  std::vector<std::byte> bytes;
  encode(wire::WireMessage{wire::CloseMsg{1}}, bytes);
  bytes[kHeaderSize] ^= static_cast<std::byte>(0x01);
  encode(wire::WireMessage{wire::CloseMsg{42}}, bytes);

  RawClient attacker(b.port());
  ASSERT_TRUE(attacker.ok());
  attacker.send_bytes(bytes);

  ASSERT_TRUE(pump_until(b, [&received] { return !received.empty(); }));
  EXPECT_EQ(received.front(), wire::WireMessage{wire::CloseMsg{42}});
  EXPECT_EQ(b.counters().frames_rejected, 1u);
}

TEST(TcpTransport, BadMagicDropsTheConnection) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(b.listen(0), 0);
  std::vector<wire::WireMessage> received;
  b.set_handler([&received](const wire::WireMessage& m) {
    received.push_back(m);
    return std::nullopt;
  });

  // Garbage at the head of the stream is unresynchronisable: even a valid
  // frame behind it must NOT be delivered — the connection is cut.
  std::vector<std::byte> bytes(8, static_cast<std::byte>(0xFF));
  encode(wire::WireMessage{wire::CloseMsg{42}}, bytes);

  RawClient attacker(b.port());
  ASSERT_TRUE(attacker.ok());
  attacker.send_bytes(bytes);

  pump_until(b, [&b] { return b.counters().frames_rejected > 0; });
  EXPECT_EQ(b.counters().frames_rejected, 1u);
  EXPECT_TRUE(received.empty());
  EXPECT_TRUE(attacker.peer_closed(1000));
}

TEST(TcpTransport, ByeIsGracefulNotACrash) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport a(fast_config(), sim::rng::Stream(1));
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(a.listen(0), 0);
  ASSERT_NE(b.listen(0), 0);

  std::vector<std::uint16_t> byes;
  std::vector<std::uint16_t> deaths;
  b.set_peer_bye([&byes](std::uint16_t p) { byes.push_back(p); });
  b.set_peer_dead([&deaths](std::uint16_t p) { deaths.push_back(p); });

  ASSERT_TRUE(a.send_oneway(b.port(), wire::CloseMsg{1}));
  a.shutdown();  // clean departure: Bye rides ahead of the FIN

  ASSERT_TRUE(pump_until(b, [&byes] { return !byes.empty(); }));
  EXPECT_EQ(byes.front(), a.port());
  EXPECT_TRUE(deaths.empty());
}

TEST(TcpTransport, HeartbeatTimeoutDetectsASilentPeer) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport a(fast_config(), sim::rng::Stream(1));
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(a.listen(0), 0);
  ASSERT_NE(b.listen(0), 0);

  std::vector<std::uint16_t> deaths;
  a.set_peer_dead([&deaths](std::uint16_t p) { deaths.push_back(p); });

  // b never pumps: heartbeats land in its kernel buffer unanswered — the
  // crash shape (silence), as opposed to the Bye shape above.
  a.watch(b.port());
  ASSERT_TRUE(pump_until(a, [&deaths] { return !deaths.empty(); }, 4.0));
  EXPECT_EQ(deaths.front(), b.port());
  EXPECT_EQ(a.counters().heartbeat_timeouts, 1u);
}

TEST(TcpTransport, HeartbeatKeepsALivePeerWatched) {
  SKIP_WITHOUT_SOCKETS();
  TcpTransport a(fast_config(), sim::rng::Stream(1));
  TcpTransport b(fast_config(), sim::rng::Stream(2));
  ASSERT_NE(a.listen(0), 0);
  ASSERT_NE(b.listen(0), 0);

  std::vector<std::uint16_t> deaths;
  a.set_peer_dead([&deaths](std::uint16_t p) { deaths.push_back(p); });
  a.watch(b.port());

  // Pump both sides for > heartbeat_timeout: acks flow, nobody dies.
  for (int i = 0; i < 80; ++i) {
    a.pump(0.005);
    b.pump(0.005);
  }
  EXPECT_TRUE(deaths.empty());
  EXPECT_EQ(a.counters().heartbeat_timeouts, 0u);
}

}  // namespace
