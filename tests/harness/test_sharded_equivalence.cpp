// Serial-vs-sharded (K = 1) bitwise equivalence for the full paper scenario.
//
// ScenarioConfig::use_sharded_engine drives the replicate through a
// ShardedSimulator with one shard instead of the plain serial Simulator. The
// windowed drive of a single shard must be the *same computation* — not one
// bit of any metric may move, in any mode (paper-default decision stack,
// fault mode with its ack-timer cancel storms, and bank-fault settlement
// chaos). The serial sides of these configs are already pinned against
// pre-change dumps by test_engine_equivalence / test_determinism, so bitwise
// serial == sharded here transitively pins the sharded path too.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/replicate.hpp"
#include "parallel/thread_pool.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

// Same shape as test_engine_equivalence's pinned paper config (seed 97):
// Model II depth 3, adversaries, bounded history.
ScenarioConfig paper_config() {
  ScenarioConfig cfg = paper_default_config(97);
  cfg.good_strategy = core::StrategyKind::kUtilityModelII;
  cfg.lookahead_depth = 3;
  cfg.overlay.malicious_fraction = 0.1;
  cfg.adversary.drop_probability = 0.2;
  cfg.history_capacity = 64;
  return cfg;
}

// Same shape as test_engine_equivalence's pinned fault config (seed 131):
// ack timers armed and cancelled per hop per leg, keepalives, crashes.
ScenarioConfig fault_config() {
  ScenarioConfig cfg = paper_default_config(131);
  cfg.overlay.node_count = 24;
  cfg.overlay.degree = 4;
  cfg.pair_count = 10;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(45.0);
  cfg.fault.link_loss = 0.05;
  cfg.fault.delay_jitter = 0.3;
  cfg.fault.crash_rate_per_hour = 5.0;
  cfg.fault.crash_recovery_mean = sim::minutes(10.0);
  cfg.fault.probe_false_negative = 0.1;
  cfg.async_setup.attempt_deadline = sim::minutes(3.0);
  cfg.data_phase.duration = 90.0;
  cfg.data_phase.keepalive_interval = 10.0;
  return cfg;
}

// Same shape as test_determinism's chaotic settlement config (seed 29):
// bank-fault mode with lost/delayed claims, crashing initiators/forwarders.
ScenarioConfig bank_fault_config() {
  ScenarioConfig cfg = paper_default_config(29);
  cfg.overlay.node_count = 15;
  cfg.overlay.degree = 3;
  cfg.overlay.malicious_fraction = 0.2;
  cfg.pair_count = 6;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(20.0);
  cfg.fault.link_loss = 0.05;
  cfg.fault.delay_jitter = 0.3;
  cfg.fault.crash_rate_per_hour = 4.0;
  cfg.fault.crash_recovery_mean = sim::minutes(10.0);
  cfg.fault.probe_false_negative = 0.1;
  cfg.async_setup.attempt_deadline = sim::minutes(3.0);
  cfg.data_phase.duration = 60.0;
  cfg.data_phase.keepalive_interval = 10.0;
  cfg.fault.bank.claim_loss = 0.2;
  cfg.fault.bank.claim_delay_mean = sim::minutes(4.0);
  cfg.fault.bank.initiator_crash = 0.3;
  cfg.fault.bank.forwarder_crash = 0.15;
  cfg.fault.bank.claim_deadline = sim::minutes(20.0);
  cfg.fault.bank.close_after = sim::minutes(8.0);
  return cfg;
}

void expect_biteq(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expect_biteq(const std::vector<double>& a, const std::vector<double>& b,
                  const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]), std::bit_cast<std::uint64_t>(b[i]))
        << what << "[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

/// serial = plain Simulator path, sharded = K = 1 windowed path. Everything
/// must match bitwise except engine_window_barriers, which *counts the
/// drive* (zero without windows, > 0 with them) rather than the model.
void expect_serial_equals_sharded(const ReplicatedResult& serial,
                                  const ReplicatedResult& sharded) {
  expect_biteq(serial.good_payoff.mean(), sharded.good_payoff.mean(), "good_payoff");
  expect_biteq(serial.member_payoff.mean(), sharded.member_payoff.mean(), "member_payoff");
  expect_biteq(serial.forwarder_set_size.mean(), sharded.forwarder_set_size.mean(),
               "forwarder_set_size");
  expect_biteq(serial.avg_path_length.mean(), sharded.avg_path_length.mean(),
               "avg_path_length");
  expect_biteq(serial.path_quality.mean(), sharded.path_quality.mean(), "path_quality");
  expect_biteq(serial.initiator_utility.mean(), sharded.initiator_utility.mean(),
               "initiator_utility");
  expect_biteq(serial.initiator_spend.mean(), sharded.initiator_spend.mean(),
               "initiator_spend");
  expect_biteq(serial.connection_latency.mean(), sharded.connection_latency.mean(),
               "connection_latency");
  expect_biteq(serial.routing_efficiency.mean(), sharded.routing_efficiency.mean(),
               "routing_efficiency");
  expect_biteq(serial.delivery_ratio.mean(), sharded.delivery_ratio.mean(),
               "delivery_ratio");
  expect_biteq(serial.setup_time.mean(), sharded.setup_time.mean(), "setup_time");
  expect_biteq(serial.time_to_detect.mean(), sharded.time_to_detect.mean(),
               "time_to_detect");
  expect_biteq(serial.pooled_good_payoffs, sharded.pooled_good_payoffs,
               "pooled_good_payoffs");
  expect_biteq(serial.pooled_member_payoffs, sharded.pooled_member_payoffs,
               "pooled_member_payoffs");

  EXPECT_EQ(serial.total_reformations, sharded.total_reformations);
  EXPECT_EQ(serial.total_churn_events, sharded.total_churn_events);
  EXPECT_EQ(serial.all_payments_conserved, sharded.all_payments_conserved);
  EXPECT_EQ(serial.total_connections_completed, sharded.total_connections_completed);
  EXPECT_EQ(serial.total_connections_failed, sharded.total_connections_failed);
  EXPECT_EQ(serial.total_setup_attempts, sharded.total_setup_attempts);
  EXPECT_EQ(serial.total_ack_timeouts, sharded.total_ack_timeouts);
  EXPECT_EQ(serial.total_crashes, sharded.total_crashes);
  EXPECT_EQ(serial.total_messages_dropped, sharded.total_messages_dropped);
  EXPECT_EQ(serial.total_keepalives_sent, sharded.total_keepalives_sent);
  EXPECT_EQ(serial.total_keepalives_delivered, sharded.total_keepalives_delivered);

  // The chunked windowed drive schedules, cancels, and fires the exact same
  // events — the engine counters are part of the equivalence claim.
  EXPECT_EQ(serial.total_engine_events_scheduled, sharded.total_engine_events_scheduled);
  EXPECT_EQ(serial.total_engine_events_cancelled, sharded.total_engine_events_cancelled);
  EXPECT_EQ(serial.total_engine_events_fired, sharded.total_engine_events_fired);
  EXPECT_EQ(serial.total_engine_callback_heap_allocs,
            sharded.total_engine_callback_heap_allocs);

  EXPECT_EQ(serial.total_settlements_closed, sharded.total_settlements_closed);
  EXPECT_EQ(serial.total_settlements_abandoned, sharded.total_settlements_abandoned);
  EXPECT_EQ(serial.total_settlements_expired, sharded.total_settlements_expired);
  EXPECT_EQ(serial.total_settlements_prorata, sharded.total_settlements_prorata);
  EXPECT_EQ(serial.total_claims_submitted, sharded.total_claims_submitted);
  EXPECT_EQ(serial.total_claims_lost, sharded.total_claims_lost);
  EXPECT_EQ(serial.total_claims_rejected, sharded.total_claims_rejected);
  EXPECT_EQ(serial.total_claims_after_terminal, sharded.total_claims_after_terminal);
  EXPECT_EQ(serial.total_settlement_escrow_milli, sharded.total_settlement_escrow_milli);
  EXPECT_EQ(serial.total_settlement_paid_milli, sharded.total_settlement_paid_milli);
  EXPECT_EQ(serial.total_settlement_refunded_milli,
            sharded.total_settlement_refunded_milli);
  EXPECT_EQ(serial.all_settlements_reconciled, sharded.all_settlements_reconciled);

  // Engine-path counters: at K = 1 nothing ever crosses a shard boundary,
  // while the windowed drive must have actually synchronised.
  EXPECT_EQ(serial.total_engine_cross_shard_messages, 0u);
  EXPECT_EQ(sharded.total_engine_cross_shard_messages, 0u);
  EXPECT_EQ(serial.total_engine_window_barriers, 0u);
  EXPECT_GT(sharded.total_engine_window_barriers, 0u);
}

void run_mode(ScenarioConfig cfg, std::size_t replicates) {
  cfg.use_sharded_engine = false;
  const ReplicatedResult serial = run_replicated(cfg, replicates, nullptr);
  cfg.use_sharded_engine = true;
  const ReplicatedResult sharded = run_replicated(cfg, replicates, nullptr);
  expect_serial_equals_sharded(serial, sharded);
}

}  // namespace

TEST(ShardedEquivalence, PaperDefaultBitwiseIdentical) { run_mode(paper_config(), 2); }

TEST(ShardedEquivalence, FaultModeBitwiseIdentical) { run_mode(fault_config(), 3); }

TEST(ShardedEquivalence, BankFaultModeBitwiseIdentical) { run_mode(bank_fault_config(), 3); }

TEST(ShardedEquivalence, HoldsAcrossThreadPoolSizesAndWindows) {
  // The window size may change *when* run_until pauses, never *what* runs:
  // any window, any pool, same bits.
  ScenarioConfig cfg = fault_config();
  cfg.use_sharded_engine = false;
  const ReplicatedResult serial = run_replicated(cfg, 2, nullptr);

  cfg.use_sharded_engine = true;
  for (const double window_minutes : {0.5, 7.0}) {
    cfg.engine_window = sim::minutes(window_minutes);
    SCOPED_TRACE("window " + std::to_string(window_minutes) + " min");
    parallel::ThreadPool pool(2);
    expect_serial_equals_sharded(serial, run_replicated(cfg, 2, &pool));
  }
}
