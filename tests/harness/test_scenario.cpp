#include "harness/scenario.hpp"

#include <gtest/gtest.h>

using namespace p2panon;
using namespace p2panon::harness;

namespace {

/// Scaled-down scenario for fast tests: 20 nodes, 10 pairs, 6 connections.
ScenarioConfig small_config(std::uint64_t seed = 1) {
  ScenarioConfig cfg = paper_default_config(seed);
  cfg.overlay.node_count = 20;
  cfg.overlay.degree = 4;
  cfg.pair_count = 10;
  cfg.connections_per_pair = 6;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(30.0);
  return cfg;
}

}  // namespace

TEST(Scenario, PaperDefaultsMatchSectionThree) {
  const ScenarioConfig cfg = paper_default_config();
  EXPECT_EQ(cfg.overlay.node_count, 40u);
  EXPECT_EQ(cfg.overlay.degree, 5u);
  EXPECT_EQ(cfg.pair_count, 100u);
  EXPECT_EQ(cfg.connections_per_pair, 20u);
  EXPECT_DOUBLE_EQ(cfg.p_f_lo, 50.0);
  EXPECT_DOUBLE_EQ(cfg.p_f_hi, 100.0);
  EXPECT_DOUBLE_EQ(cfg.weights.w_selectivity, 0.5);
  EXPECT_DOUBLE_EQ(cfg.overlay.churn.session_median, sim::minutes(60.0));
}

TEST(Scenario, RunsAllConnections) {
  const ScenarioResult r = ScenarioRunner(small_config()).run();
  EXPECT_EQ(r.connections_completed, 60u);
  EXPECT_EQ(r.forwarder_set_size.count(), 10u);  // one sample per pair
  EXPECT_GT(r.churn_events, 0u);
  EXPECT_GT(r.probes, 0u);
}

TEST(Scenario, PaymentConservationHolds) {
  const ScenarioResult r = ScenarioRunner(small_config()).run();
  EXPECT_TRUE(r.payment_conserved);
  EXPECT_GT(r.total_paid_credits, 0.0);
}

TEST(Scenario, DeterministicInSeed) {
  const ScenarioResult a = ScenarioRunner(small_config(7)).run();
  const ScenarioResult b = ScenarioRunner(small_config(7)).run();
  EXPECT_DOUBLE_EQ(a.good_payoff.mean(), b.good_payoff.mean());
  EXPECT_DOUBLE_EQ(a.forwarder_set_size.mean(), b.forwarder_set_size.mean());
  EXPECT_EQ(a.good_payoff_samples, b.good_payoff_samples);
  EXPECT_EQ(a.churn_events, b.churn_events);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const ScenarioResult a = ScenarioRunner(small_config(1)).run();
  const ScenarioResult b = ScenarioRunner(small_config(2)).run();
  EXPECT_NE(a.good_payoff.mean(), b.good_payoff.mean());
}

TEST(Scenario, GoodPayoffSamplesMatchGoodNodeCount) {
  ScenarioConfig cfg = small_config();
  cfg.overlay.malicious_fraction = 0.25;
  const ScenarioResult r = ScenarioRunner(cfg).run();
  EXPECT_EQ(r.good_payoff_samples.size(), 15u);  // 20 - 5 malicious
  EXPECT_EQ(r.good_payoff.count(), 15u);
}

TEST(Scenario, ForwarderSetSmallerUnderUtilityRouting) {
  ScenarioConfig random_cfg = small_config(3);
  random_cfg.good_strategy = core::StrategyKind::kRandom;
  ScenarioConfig utility_cfg = small_config(3);
  utility_cfg.good_strategy = core::StrategyKind::kUtilityModelI;
  const double random_set = ScenarioRunner(random_cfg).run().forwarder_set_size.mean();
  const double utility_set = ScenarioRunner(utility_cfg).run().forwarder_set_size.mean();
  EXPECT_LT(utility_set, random_set);
}

TEST(Scenario, MoreMaliciousNodesLowerMemberPayoff) {
  // The paper's Fig. 3 metric: per-connection-set member payoff falls as
  // adversaries inflate ||pi|| (workload m and routing share both shrink).
  ScenarioConfig low = small_config(5);
  low.overlay.malicious_fraction = 0.1;
  ScenarioConfig high = small_config(5);
  high.overlay.malicious_fraction = 0.8;
  const double payoff_low = ScenarioRunner(low).run().member_payoff.mean();
  const double payoff_high = ScenarioRunner(high).run().member_payoff.mean();
  EXPECT_GT(payoff_low, payoff_high);
}

TEST(Scenario, MemberPayoffSamplesMatchAccumulator) {
  const ScenarioResult r = ScenarioRunner(small_config(11)).run();
  EXPECT_EQ(r.member_payoff_samples.size(), r.member_payoff.count());
  EXPECT_GT(r.member_payoff.count(), 0u);
}

TEST(Scenario, MemberPayoffPositiveUnderPaperContract) {
  // P_f in [50, 100] dwarfs C_p = 10 and C_t <= 1: serving a set nets a
  // strictly positive payoff (the participation incentive of Prop. 2/3).
  const ScenarioResult r = ScenarioRunner(small_config(12)).run();
  EXPECT_GT(r.member_payoff.min(), 0.0);
}

TEST(Scenario, NewEdgeFractionDecaysUnderUtilityRouting) {
  ScenarioConfig cfg = small_config(4);
  cfg.connections_per_pair = 12;
  const ScenarioResult r = ScenarioRunner(cfg).run();
  ASSERT_EQ(r.new_edge_fraction_by_conn.size(), 12u);
  // Connection 1 edges are almost all new (an edge can repeat *within* one
  // path when the walk revisits it, so slightly below 1 is legitimate).
  EXPECT_GT(r.new_edge_fraction_by_conn.front().mean(), 0.85);
  EXPECT_LT(r.new_edge_fraction_by_conn.back().mean(), 0.6);
  EXPECT_LT(r.new_edge_fraction_by_conn.back().mean(),
            r.new_edge_fraction_by_conn.front().mean());
}

TEST(Scenario, DropAttackCountsReformations) {
  ScenarioConfig cfg = small_config(6);
  cfg.overlay.malicious_fraction = 0.4;
  cfg.adversary.drop_probability = 0.5;
  const ScenarioResult r = ScenarioRunner(cfg).run();
  EXPECT_GT(r.reformations, 0u);
  EXPECT_EQ(r.connections_completed, 60u);
  EXPECT_TRUE(r.payment_conserved);
}

TEST(Scenario, HopCountTerminationBoundsPathLength) {
  ScenarioConfig cfg = small_config(8);
  cfg.termination = core::TerminationPolicy::kHopCount;
  cfg.ttl_hops = 2;
  const ScenarioResult r = ScenarioRunner(cfg).run();
  EXPECT_LE(r.avg_path_length.max(), 2.0 + 1e-9);
}

TEST(Scenario, RoutingEfficiencyDefinition) {
  const ScenarioResult r = ScenarioRunner(small_config(9)).run();
  EXPECT_NEAR(r.routing_efficiency, r.member_payoff.mean() / r.forwarder_set_size.mean(), 1e-9);
}

TEST(Scenario, MinimalOverlayStillRuns) {
  // Smallest legal world: 3 nodes, degree 1 — paths are forced and short,
  // but the full pipeline (probing, payments, settlement) must hold up.
  ScenarioConfig cfg = paper_default_config(13);
  cfg.overlay.node_count = 3;
  cfg.overlay.degree = 1;
  cfg.pair_count = 2;
  cfg.connections_per_pair = 3;
  cfg.warmup = sim::minutes(10.0);
  cfg.pair_start_window = sim::minutes(10.0);
  const ScenarioResult r = ScenarioRunner(cfg).run();
  EXPECT_EQ(r.connections_completed, 6u);
  EXPECT_TRUE(r.payment_conserved);
}

TEST(Scenario, ZipfResponderSelectionConcentrates) {
  ScenarioConfig uniform = small_config(14);
  ScenarioConfig skewed = small_config(14);
  skewed.responder_zipf = 2.0;
  // Not directly observable from results; assert the run completes and
  // conserves, and that the configs genuinely diverge in outcome.
  const ScenarioResult u = ScenarioRunner(uniform).run();
  const ScenarioResult z = ScenarioRunner(skewed).run();
  EXPECT_TRUE(u.payment_conserved);
  EXPECT_TRUE(z.payment_conserved);
  EXPECT_NE(u.member_payoff.mean(), z.member_payoff.mean());
}

TEST(Scenario, CidRotationConfigPropagates) {
  ScenarioConfig cfg = small_config(15);
  cfg.cid_rotation = 2;
  const ScenarioResult r = ScenarioRunner(cfg).run();
  EXPECT_EQ(r.connections_completed, 60u);
  EXPECT_TRUE(r.payment_conserved);
}

TEST(Scenario, LatencyPositiveAndScalesWithPayload) {
  ScenarioConfig small_payload = small_config(16);
  ScenarioConfig big_payload = small_config(16);
  big_payload.overlay.link.payload_size = 10.0;
  const double small_lat = ScenarioRunner(small_payload).run().connection_latency.mean();
  const double big_lat = ScenarioRunner(big_payload).run().connection_latency.mean();
  EXPECT_GT(small_lat, 0.0);
  EXPECT_GT(big_lat, small_lat);
}

TEST(Scenario, InitiatorUtilityUsesAnonymityValuation) {
  ScenarioConfig cfg = small_config(10);
  cfg.anonymity.scale = 1.0e6;  // huge anonymity value
  const double rich = ScenarioRunner(cfg).run().initiator_utility.mean();
  cfg.anonymity.scale = 1.0;
  const double poor = ScenarioRunner(cfg).run().initiator_utility.mean();
  EXPECT_GT(rich, poor);
}
