// Property sweeps over the full simulation: invariants that must hold for
// every combination of adversary fraction, routing strategy and termination
// policy.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/scenario.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ScenarioConfig sweep_config(double f, core::StrategyKind kind, core::TerminationPolicy term,
                            std::uint64_t seed) {
  ScenarioConfig cfg = paper_default_config(seed);
  cfg.overlay.node_count = 20;
  cfg.overlay.degree = 4;
  cfg.overlay.malicious_fraction = f;
  cfg.good_strategy = kind;
  cfg.termination = term;
  cfg.pair_count = 8;
  cfg.connections_per_pair = 5;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(30.0);
  return cfg;
}

using SweepParam = std::tuple<double, core::StrategyKind, core::TerminationPolicy>;

class ScenarioInvariants : public ::testing::TestWithParam<SweepParam> {
 protected:
  ScenarioResult run(std::uint64_t seed = 3) {
    const auto [f, kind, term] = GetParam();
    return ScenarioRunner(sweep_config(f, kind, term, seed)).run();
  }
};

}  // namespace

TEST_P(ScenarioInvariants, AllConnectionsComplete) {
  EXPECT_EQ(run().connections_completed, 40u);
}

TEST_P(ScenarioInvariants, PaymentConservation) {
  EXPECT_TRUE(run().payment_conserved);
}

TEST_P(ScenarioInvariants, ForwarderSetBounds) {
  const ScenarioResult r = run();
  // ||pi|| is at least 1 (the mandatory first hop) and at most N.
  EXPECT_GE(r.forwarder_set_size.min(), 1.0);
  EXPECT_LE(r.forwarder_set_size.max(), 20.0);
}

TEST_P(ScenarioInvariants, PathQualityBounds) {
  const ScenarioResult r = run();
  EXPECT_GT(r.path_quality.min(), 0.0);
  // Q(pi) = L/||pi||; a path can revisit nodes so L can exceed ||pi||, but
  // never by more than the per-path length bound.
  EXPECT_LT(r.path_quality.max(), 64.0);
}

TEST_P(ScenarioInvariants, SpendEqualsPayoutPlusNothingLost) {
  const ScenarioResult r = run();
  // The initiators' out-of-pocket total equals everything forwarders were
  // paid (refunds returned to initiators are not "spend").
  EXPECT_NEAR(r.initiator_spend.sum(), r.total_paid_credits, 1.0);
}

TEST_P(ScenarioInvariants, MemberPayoffSamplesConsistent) {
  const ScenarioResult r = run();
  EXPECT_EQ(r.member_payoff_samples.size(), r.member_payoff.count());
  for (double s : r.member_payoff_samples) {
    EXPECT_GE(s, r.member_payoff.min() - 1e-9);
    EXPECT_LE(s, r.member_payoff.max() + 1e-9);
  }
}

TEST_P(ScenarioInvariants, DeterministicAcrossRuns) {
  const ScenarioResult a = run(11);
  const ScenarioResult b = run(11);
  EXPECT_EQ(a.good_payoff_samples, b.good_payoff_samples);
  EXPECT_EQ(a.member_payoff_samples, b.member_payoff_samples);
  EXPECT_EQ(a.churn_events, b.churn_events);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScenarioInvariants,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.7),
                       ::testing::Values(core::StrategyKind::kRandom,
                                         core::StrategyKind::kUtilityModelI,
                                         core::StrategyKind::kUtilityModelII),
                       ::testing::Values(core::TerminationPolicy::kCrowds,
                                         core::TerminationPolicy::kHopCount)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      // NOTE: no structured bindings here — commas inside [] would split
      // the INSTANTIATE macro's arguments.
      const double f = std::get<0>(info.param);
      const auto kind = std::get<1>(info.param);
      const auto term = std::get<2>(info.param);
      std::string name = "f";
      name += std::to_string(static_cast<int>(f * 10));
      name += '_';
      name += std::string(core::strategy_name(kind));
      name += term == core::TerminationPolicy::kCrowds ? "_crowds" : "_ttl";
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });
