// Sharded full-paper-scenario contracts (src/harness/paper_sharded.*):
// engine_shards = 1 keeps the serial path untouched (bitwise, digest zero),
// K > 1 runs are bitwise deterministic across thread-pool sizes AND across
// window lengths dividing the view-refresh interval, and a K = 4 run with
// bank faults terminalises every settlement with exact conservation in
// every bank partition and globally.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/paper_sharded.hpp"
#include "harness/scenario.hpp"
#include "parallel/thread_pool.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

/// Paper shape shrunk for test wall-clock: same knobs, fewer pairs.
ScenarioConfig small_config(std::uint64_t seed = 5) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.overlay.node_count = 24;
  cfg.overlay.degree = 4;
  cfg.pair_count = 12;
  cfg.connections_per_pair = 5;
  cfg.warmup = sim::minutes(10.0);
  cfg.pair_start_window = sim::minutes(20.0);
  cfg.connection_interval_mean = sim::minutes(2.0);
  cfg.engine_window = 60.0;
  cfg.view_refresh = 300.0;
  return cfg;
}

void expect_same_run(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.sharded_digest, b.sharded_digest);
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.connections_completed, b.connections_completed);
  EXPECT_EQ(a.connections_failed, b.connections_failed);
  EXPECT_EQ(a.settlements_closed, b.settlements_closed);
  EXPECT_EQ(a.settlements_abandoned, b.settlements_abandoned);
  EXPECT_EQ(a.settlements_expired, b.settlements_expired);
  EXPECT_EQ(a.claims_submitted, b.claims_submitted);
  EXPECT_EQ(a.claims_rejected, b.claims_rejected);
  EXPECT_EQ(a.settlement_escrow_milli, b.settlement_escrow_milli);
  EXPECT_EQ(a.settlement_paid_milli, b.settlement_paid_milli);
  EXPECT_EQ(a.settlement_refunded_milli, b.settlement_refunded_milli);
}

}  // namespace

TEST(PaperSharded, SerialPathUntouchedAtOneShard) {
  // engine_shards = 1 must not perturb the existing serial scenario:
  // bit-identical aggregates and a zero sharded digest.
  ScenarioConfig plain = paper_default_config(3);
  plain.pair_count = 6;
  plain.connections_per_pair = 4;
  ScenarioConfig routed = plain;
  routed.engine_shards = 1;

  const ScenarioResult a = ScenarioRunner(plain).run();
  const ScenarioResult b = ScenarioRunner(routed).run();
  EXPECT_EQ(a.sharded_digest, 0u);
  EXPECT_EQ(b.sharded_digest, 0u);
  EXPECT_EQ(a.connections_completed, b.connections_completed);
  EXPECT_EQ(a.total_paid_credits, b.total_paid_credits);
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.engine_events_fired, b.engine_events_fired);
}

TEST(PaperSharded, RunnerRoutesAutomaticallyAboveOneShard) {
  ScenarioConfig cfg = small_config();
  cfg.engine_shards = 2;
  const ScenarioResult direct = run_paper_scenario_sharded(cfg, nullptr);
  const ScenarioResult routed = ScenarioRunner(cfg).run();
  EXPECT_NE(direct.sharded_digest, 0u);
  expect_same_run(direct, routed);
}

TEST(PaperSharded, DigestInvariantAcrossThreadPools) {
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioConfig cfg = small_config();
    cfg.engine_shards = shards;

    const ScenarioResult serial = run_paper_scenario_sharded(cfg, nullptr);
    parallel::ThreadPool one(1);
    const ScenarioResult p1 = run_paper_scenario_sharded(cfg, &one);
    parallel::ThreadPool four(4);
    const ScenarioResult p4 = run_paper_scenario_sharded(cfg, &four);

    EXPECT_NE(serial.sharded_digest, 0u);
    expect_same_run(serial, p1);
    expect_same_run(serial, p4);
  }
}

TEST(PaperSharded, DigestInvariantAcrossWindowsDividingRefresh) {
  // Fixed view-refresh interval R = 300 s; any window dividing R refreshes
  // the merged views at the same absolute times, so the model's end state
  // is identical window for window.
  ScenarioConfig base = small_config();
  base.engine_shards = 4;
  base.view_refresh = 300.0;

  base.engine_window = 300.0;
  const ScenarioResult w300 = run_paper_scenario_sharded(base, nullptr);
  base.engine_window = 150.0;
  const ScenarioResult w150 = run_paper_scenario_sharded(base, nullptr);
  base.engine_window = 60.0;
  const ScenarioResult w60 = run_paper_scenario_sharded(base, nullptr);

  EXPECT_NE(w300.sharded_digest, 0u);
  expect_same_run(w300, w150);
  expect_same_run(w300, w60);
}

TEST(PaperSharded, DigestVariesWithSeed) {
  ScenarioConfig cfg = small_config(5);
  cfg.engine_shards = 2;
  const ScenarioResult a = run_paper_scenario_sharded(cfg, nullptr);
  cfg.seed = 6;
  const ScenarioResult b = run_paper_scenario_sharded(cfg, nullptr);
  EXPECT_NE(a.sharded_digest, b.sharded_digest);
}

TEST(PaperSharded, ConservesAndReconcilesAtFourShards) {
  ScenarioConfig cfg = small_config();
  cfg.engine_shards = 4;
  const ScenarioResult r = run_paper_scenario_sharded(cfg, nullptr);

  EXPECT_TRUE(r.payment_conserved);
  EXPECT_TRUE(r.settlement_reconciled);
  EXPECT_GT(r.connections_completed, 0u);
  EXPECT_GT(r.settlements_closed, 0u);
  EXPECT_GT(r.claims_submitted, 0u);
  EXPECT_EQ(r.claims_rejected, 0u);
  EXPECT_EQ(r.settlement_escrow_milli, r.settlement_paid_milli + r.settlement_refunded_milli);
  EXPECT_GT(r.engine_window_barriers, 0u);
}

TEST(PaperSharded, FaultModeReconcilesAtFourShards) {
  // Link loss plus the full bank-fault plane: lost claims, crashed
  // initiators (deadline abandons/expires), crashed forwarders. Money must
  // still conserve exactly in every partition and globally.
  ScenarioConfig cfg = small_config(9);
  cfg.engine_shards = 4;
  cfg.bank_partitions = 3;  // deliberately != K
  cfg.fault.link_loss = 0.05;
  cfg.fault.bank.lifecycle = true;
  cfg.fault.bank.claim_loss = 0.2;
  cfg.fault.bank.initiator_crash = 0.3;
  cfg.fault.bank.forwarder_crash = 0.1;

  const ScenarioResult r = run_paper_scenario_sharded(cfg, nullptr);
  EXPECT_TRUE(r.payment_conserved);
  EXPECT_TRUE(r.settlement_reconciled);
  EXPECT_GT(r.settlements_closed + r.settlements_abandoned + r.settlements_expired, 0u);
  EXPECT_EQ(r.settlement_escrow_milli, r.settlement_paid_milli + r.settlement_refunded_milli);

  // Determinism holds under faults too.
  const ScenarioResult again = run_paper_scenario_sharded(cfg, nullptr);
  expect_same_run(r, again);
}
