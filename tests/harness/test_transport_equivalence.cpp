// Transport-backend equivalence: routing fault-mode legs/acks/keepalives and
// bank-fault claim/close traffic through transport::SimTransport (kSim) must
// be *bitwise* invisible next to the legacy direct scheduling (kDirect) in
// every result field except the transport_* counters.
//
// This is the pin that lets kSim be the default: the transport plane adds a
// wire-codec round-trip and frame accounting per message, but consumes the
// same RNG draws in the same order and schedules the same continuations at
// the same times. EXPECT_DOUBLE_EQ tolerance would mask a low-bit divergence
// (an extra draw, a reordered schedule), hence the bit_cast comparisons.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "harness/scenario.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig cfg = paper_default_config(seed);
  cfg.overlay.node_count = 15;
  cfg.overlay.degree = 3;
  cfg.overlay.malicious_fraction = 0.2;
  cfg.pair_count = 6;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(20.0);
  return cfg;
}

ScenarioConfig faulty_config(std::uint64_t seed) {
  ScenarioConfig cfg = small_config(seed);
  cfg.fault.link_loss = 0.05;
  cfg.fault.delay_jitter = 0.3;
  cfg.fault.crash_rate_per_hour = 4.0;
  cfg.fault.crash_recovery_mean = sim::minutes(10.0);
  cfg.fault.probe_false_negative = 0.1;
  cfg.async_setup.attempt_deadline = sim::minutes(3.0);
  cfg.data_phase.duration = 60.0;
  cfg.data_phase.keepalive_interval = 10.0;
  return cfg;
}

ScenarioConfig bank_fault_config(std::uint64_t seed) {
  ScenarioConfig cfg = faulty_config(seed);
  cfg.fault.bank.claim_loss = 0.2;
  cfg.fault.bank.claim_delay_mean = sim::minutes(4.0);
  cfg.fault.bank.initiator_crash = 0.3;
  cfg.fault.bank.forwarder_crash = 0.15;
  cfg.fault.bank.claim_deadline = sim::minutes(20.0);
  cfg.fault.bank.close_after = sim::minutes(8.0);
  return cfg;
}

void expect_biteq(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expect_acc_biteq(const metrics::Accumulator& a, const metrics::Accumulator& b,
                      const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  expect_biteq(a.mean(), b.mean(), what);
  expect_biteq(a.variance(), b.variance(), what);
}

/// Every ScenarioResult field EXCEPT the transport_* counters, bitwise.
void expect_same_modulo_transport(const ScenarioResult& a, const ScenarioResult& b) {
  expect_acc_biteq(a.good_payoff, b.good_payoff, "good_payoff");
  expect_acc_biteq(a.member_payoff, b.member_payoff, "member_payoff");
  expect_acc_biteq(a.forwarder_set_size, b.forwarder_set_size, "forwarder_set_size");
  expect_acc_biteq(a.avg_path_length, b.avg_path_length, "avg_path_length");
  expect_acc_biteq(a.path_quality, b.path_quality, "path_quality");
  expect_acc_biteq(a.connection_latency, b.connection_latency, "connection_latency");
  expect_acc_biteq(a.initiator_utility, b.initiator_utility, "initiator_utility");
  expect_acc_biteq(a.initiator_spend, b.initiator_spend, "initiator_spend");
  ASSERT_EQ(a.good_payoff_samples.size(), b.good_payoff_samples.size());
  for (std::size_t i = 0; i < a.good_payoff_samples.size(); ++i) {
    expect_biteq(a.good_payoff_samples[i], b.good_payoff_samples[i], "good_payoff_samples");
  }
  ASSERT_EQ(a.member_payoff_samples.size(), b.member_payoff_samples.size());
  for (std::size_t i = 0; i < a.member_payoff_samples.size(); ++i) {
    expect_biteq(a.member_payoff_samples[i], b.member_payoff_samples[i],
                 "member_payoff_samples");
  }
  ASSERT_EQ(a.new_edge_fraction_by_conn.size(), b.new_edge_fraction_by_conn.size());
  for (std::size_t i = 0; i < a.new_edge_fraction_by_conn.size(); ++i) {
    expect_acc_biteq(a.new_edge_fraction_by_conn[i], b.new_edge_fraction_by_conn[i],
                     "new_edge_fraction_by_conn");
  }
  expect_biteq(a.routing_efficiency, b.routing_efficiency, "routing_efficiency");
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.reformations, b.reformations);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.connections_completed, b.connections_completed);
  EXPECT_EQ(a.payment_conserved, b.payment_conserved);
  expect_biteq(a.total_paid_credits, b.total_paid_credits, "total_paid_credits");
  expect_biteq(a.sim_end_time, b.sim_end_time, "sim_end_time");
  EXPECT_EQ(a.connections_failed, b.connections_failed);
  EXPECT_EQ(a.setup_attempts, b.setup_attempts);
  EXPECT_EQ(a.setup_ack_timeouts, b.setup_ack_timeouts);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.probe_false_negatives, b.probe_false_negatives);
  EXPECT_EQ(a.keepalives_sent, b.keepalives_sent);
  EXPECT_EQ(a.keepalives_delivered, b.keepalives_delivered);
  EXPECT_EQ(a.failures_detected, b.failures_detected);
  expect_acc_biteq(a.setup_time, b.setup_time, "setup_time");
  expect_acc_biteq(a.time_to_detect, b.time_to_detect, "time_to_detect");
  // The engine counters are the sharpest probe: one extra scheduled event —
  // a wrapped continuation, a stray timer — shows up here first.
  EXPECT_EQ(a.engine_events_scheduled, b.engine_events_scheduled);
  EXPECT_EQ(a.engine_events_cancelled, b.engine_events_cancelled);
  EXPECT_EQ(a.engine_events_fired, b.engine_events_fired);
  EXPECT_EQ(a.engine_callback_heap_allocs, b.engine_callback_heap_allocs);
  EXPECT_EQ(a.engine_cross_shard_messages, b.engine_cross_shard_messages);
  EXPECT_EQ(a.engine_window_barriers, b.engine_window_barriers);
  EXPECT_EQ(a.settlements_closed, b.settlements_closed);
  EXPECT_EQ(a.settlements_abandoned, b.settlements_abandoned);
  EXPECT_EQ(a.settlements_expired, b.settlements_expired);
  EXPECT_EQ(a.settlements_prorata, b.settlements_prorata);
  EXPECT_EQ(a.claims_submitted, b.claims_submitted);
  EXPECT_EQ(a.claims_lost, b.claims_lost);
  EXPECT_EQ(a.claims_rejected, b.claims_rejected);
  EXPECT_EQ(a.claims_after_terminal, b.claims_after_terminal);
  EXPECT_EQ(a.settlement_escrow_milli, b.settlement_escrow_milli);
  EXPECT_EQ(a.settlement_paid_milli, b.settlement_paid_milli);
  EXPECT_EQ(a.settlement_refunded_milli, b.settlement_refunded_milli);
  EXPECT_EQ(a.settlement_reconciled, b.settlement_reconciled);
  EXPECT_EQ(a.sharded_digest, b.sharded_digest);
}

ScenarioResult run_with_backend(ScenarioConfig cfg, TransportBackend backend) {
  cfg.transport = backend;
  return ScenarioRunner(cfg).run();
}

void expect_transport_counters_zero(const ScenarioResult& r) {
  EXPECT_EQ(r.transport_frames_sent, 0u);
  EXPECT_EQ(r.transport_frames_delivered, 0u);
  EXPECT_EQ(r.transport_frames_dropped, 0u);
  EXPECT_EQ(r.transport_frames_rejected, 0u);
  EXPECT_EQ(r.transport_reconnects, 0u);
  EXPECT_EQ(r.transport_backoff_retries, 0u);
  EXPECT_EQ(r.transport_heartbeat_timeouts, 0u);
  EXPECT_EQ(r.transport_deadline_expiries, 0u);
}

}  // namespace

TEST(TransportEquivalence, FaultFreePathSendsNoFramesEitherWay) {
  // The non-fault scenario runs connections synchronously — no messages, so
  // kSim has nothing to frame and both backends are trivially identical with
  // all transport counters zero.
  for (std::uint64_t seed : {17ull, 18ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ScenarioResult direct = run_with_backend(small_config(seed),
                                                   TransportBackend::kDirect);
    const ScenarioResult sim = run_with_backend(small_config(seed), TransportBackend::kSim);
    expect_same_modulo_transport(direct, sim);
    expect_transport_counters_zero(direct);
    expect_transport_counters_zero(sim);
  }
}

TEST(TransportEquivalence, FaultModeIsBitwiseEqualAcrossBackends) {
  for (std::uint64_t seed : {23ull, 24ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ScenarioResult direct = run_with_backend(faulty_config(seed),
                                                   TransportBackend::kDirect);
    const ScenarioResult sim = run_with_backend(faulty_config(seed), TransportBackend::kSim);
    ASSERT_GT(sim.crashes, 0u) << "config must actually exercise fault mode";
    expect_same_modulo_transport(direct, sim);

    // kDirect frames nothing; kSim frames every leg/ack/keepalive and
    // accounts for each one exactly once.
    expect_transport_counters_zero(direct);
    EXPECT_GT(sim.transport_frames_sent, 0u);
    EXPECT_EQ(sim.transport_frames_sent,
              sim.transport_frames_delivered + sim.transport_frames_dropped);
    EXPECT_EQ(sim.transport_frames_rejected, 0u) << "self-encoded frames must round-trip";
    // TCP-only rows stay zero in-sim.
    EXPECT_EQ(sim.transport_reconnects, 0u);
    EXPECT_EQ(sim.transport_backoff_retries, 0u);
    EXPECT_EQ(sim.transport_heartbeat_timeouts, 0u);
    EXPECT_EQ(sim.transport_deadline_expiries, 0u);
  }
}

TEST(TransportEquivalence, BankFaultModeIsBitwiseEqualAcrossBackends) {
  for (std::uint64_t seed : {29ull, 30ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ScenarioResult direct = run_with_backend(bank_fault_config(seed),
                                                   TransportBackend::kDirect);
    const ScenarioResult sim = run_with_backend(bank_fault_config(seed),
                                                TransportBackend::kSim);
    ASSERT_GT(sim.claims_submitted, 0u) << "config must actually submit claims";
    expect_same_modulo_transport(direct, sim);

    expect_transport_counters_zero(direct);
    // Claim/close traffic rides the transport too, on top of legs/acks.
    EXPECT_GT(sim.transport_frames_sent,
              sim.keepalives_sent)  // strictly more frame types than keepalives
        << "claim/close frames should add to the data-plane traffic";
    EXPECT_EQ(sim.transport_frames_sent,
              sim.transport_frames_delivered + sim.transport_frames_dropped);
    EXPECT_EQ(sim.transport_frames_rejected, 0u);
  }
}

TEST(TransportEquivalence, FramesDroppedMatchesTheInjectorCount) {
  // SimTransport's drop accounting and the injector's own counter observe
  // the same coin flips for legs/acks/keepalives; claim/close frames are
  // dispatched synchronously and never dropped, so the transport's dropped
  // row can only exceed the injector's messages_dropped... never, and the
  // leg/ack/keepalive drops are exactly the injector's. (Claim loss is a
  // separate bank-fault stream counted in claims_lost, not frame drops.)
  const ScenarioResult sim = run_with_backend(faulty_config(31), TransportBackend::kSim);
  EXPECT_EQ(sim.transport_frames_dropped, sim.messages_dropped);
}
