// The tentpole equivalence proof: a full replicate with the decision-stack
// caches force-disabled must be bitwise identical to one with them enabled.
// If any cache layer (edge-quality cache, memoised lookahead, lazy SPNE
// solver) ever returned a value that differed in even the last ulp, the
// divergence would compound through routing choices, history, payments and
// payoffs — so comparing raw sample vectors with operator== is the
// strictest possible end-to-end check.
#include "harness/scenario.hpp"

#include <gtest/gtest.h>

using namespace p2panon;
using namespace p2panon::harness;

namespace {

void expect_bitwise_equal(const ScenarioResult& off, const ScenarioResult& on) {
  // Raw per-sample vectors: exact double equality, element by element.
  EXPECT_EQ(off.good_payoff_samples, on.good_payoff_samples);
  EXPECT_EQ(off.member_payoff_samples, on.member_payoff_samples);

  // Accumulator means over pair-level metrics.
  EXPECT_EQ(off.forwarder_set_size.mean(), on.forwarder_set_size.mean());
  EXPECT_EQ(off.avg_path_length.mean(), on.avg_path_length.mean());
  EXPECT_EQ(off.path_quality.mean(), on.path_quality.mean());
  EXPECT_EQ(off.initiator_utility.mean(), on.initiator_utility.mean());
  EXPECT_EQ(off.initiator_spend.mean(), on.initiator_spend.mean());
  EXPECT_EQ(off.connection_latency.mean(), on.connection_latency.mean());
  EXPECT_EQ(off.routing_efficiency, on.routing_efficiency);

  // System-level counters and the payment invariant.
  EXPECT_EQ(off.total_paid_credits, on.total_paid_credits);
  EXPECT_EQ(off.reformations, on.reformations);
  EXPECT_EQ(off.connections_completed, on.connections_completed);
  EXPECT_EQ(off.churn_events, on.churn_events);
  EXPECT_EQ(off.probes, on.probes);
  EXPECT_EQ(off.payment_conserved, on.payment_conserved);
  EXPECT_TRUE(on.payment_conserved);
}

ScenarioResult run_with_cache(ScenarioConfig cfg, bool enabled) {
  cfg.use_decision_cache = enabled;
  return ScenarioRunner(cfg).run();
}

}  // namespace

TEST(CacheEquivalence, PaperDefaultModel2Depth3) {
  // The acceptance configuration: paper defaults, Utility Model II with the
  // full depth-3 lookahead (the hot path the caches accelerate).
  ScenarioConfig cfg = paper_default_config(21);
  cfg.good_strategy = core::StrategyKind::kUtilityModelII;
  cfg.lookahead_depth = 3;
  expect_bitwise_equal(run_with_cache(cfg, false), run_with_cache(cfg, true));
}

TEST(CacheEquivalence, AdversarialChurnHeavy) {
  // Hostile conditions stress every invalidation path: 40% adversaries
  // dropping payloads (reformations re-enter routing mid-set), short
  // sessions (rapid churn: neighbour replacements bump probing epochs,
  // forced-online events), and bounded history (FIFO evictions bump
  // history epochs while entries leave mid-replicate).
  ScenarioConfig cfg = paper_default_config(22);
  cfg.good_strategy = core::StrategyKind::kUtilityModelII;
  cfg.lookahead_depth = 3;
  cfg.overlay.malicious_fraction = 0.4;
  cfg.adversary.drop_probability = 0.3;
  cfg.overlay.churn.session_median = sim::minutes(10.0);
  cfg.overlay.churn.session_min = sim::minutes(2.0);
  cfg.overlay.churn.session_max = sim::hours(2.0);
  cfg.history_capacity = 8;
  cfg.pair_count = 40;  // keep the hostile run fast; coverage, not scale
  expect_bitwise_equal(run_with_cache(cfg, false), run_with_cache(cfg, true));
}

TEST(CacheEquivalence, SpneStrategy) {
  // The lazy memoised backward induction must reproduce the eager solver
  // through a whole replicate, not just per-decision.
  ScenarioConfig cfg = paper_default_config(23);
  cfg.good_strategy = core::StrategyKind::kSpne;
  cfg.lookahead_depth = 3;
  cfg.overlay.node_count = 20;
  cfg.overlay.degree = 4;
  cfg.pair_count = 12;
  cfg.connections_per_pair = 8;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(30.0);
  expect_bitwise_equal(run_with_cache(cfg, false), run_with_cache(cfg, true));
}

TEST(CacheEquivalence, Model1AndRandomUnaffected) {
  // Strategies that only touch the edge cache (no lookahead memo) must be
  // equally invariant.
  for (const auto kind : {core::StrategyKind::kUtilityModelI, core::StrategyKind::kRandom}) {
    ScenarioConfig cfg = paper_default_config(24);
    cfg.good_strategy = kind;
    cfg.overlay.node_count = 20;
    cfg.overlay.degree = 4;
    cfg.pair_count = 10;
    cfg.connections_per_pair = 6;
    cfg.warmup = sim::minutes(30.0);
    cfg.pair_start_window = sim::minutes(30.0);
    expect_bitwise_equal(run_with_cache(cfg, false), run_with_cache(cfg, true));
  }
}
