#include "harness/replicate.hpp"

#include <gtest/gtest.h>

#include "harness/table.hpp"

#include <sstream>

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ScenarioConfig tiny_config(std::uint64_t seed = 1) {
  ScenarioConfig cfg = paper_default_config(seed);
  cfg.overlay.node_count = 15;
  cfg.overlay.degree = 3;
  cfg.pair_count = 5;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(20.0);
  return cfg;
}

}  // namespace

TEST(Replicate, AggregatesAcrossSeeds) {
  const ReplicatedResult r = run_replicated(tiny_config(), 4);
  EXPECT_EQ(r.replicates, 4u);
  EXPECT_EQ(r.good_payoff.count(), 4u);
  EXPECT_EQ(r.pooled_good_payoffs.size(), 4u * 15u);
  EXPECT_TRUE(r.all_payments_conserved);
}

TEST(Replicate, ConfidenceIntervalAvailable) {
  const ReplicatedResult r = run_replicated(tiny_config(), 5);
  const auto ci = r.good_payoff_ci();
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(r.good_payoff.mean()));
}

TEST(Replicate, ParallelMatchesSerialExactly) {
  parallel::ThreadPool pool(4);
  const ReplicatedResult serial = run_replicated(tiny_config(), 6, nullptr);
  const ReplicatedResult par = run_replicated(tiny_config(), 6, &pool);
  EXPECT_DOUBLE_EQ(serial.good_payoff.mean(), par.good_payoff.mean());
  EXPECT_DOUBLE_EQ(serial.forwarder_set_size.mean(), par.forwarder_set_size.mean());
  EXPECT_EQ(serial.pooled_good_payoffs, par.pooled_good_payoffs);
  EXPECT_EQ(serial.total_churn_events, par.total_churn_events);
}

TEST(Replicate, DistinctReplicatesActuallyVary) {
  const ReplicatedResult r = run_replicated(tiny_config(), 4);
  EXPECT_GT(r.good_payoff.variance(), 0.0);
}

TEST(Replicate, NewEdgeCurveAggregated) {
  const ReplicatedResult r = run_replicated(tiny_config(), 3);
  ASSERT_EQ(r.new_edge_fraction_by_conn.size(), 4u);
  EXPECT_GT(r.new_edge_fraction_by_conn.front().mean(), 0.8);
  EXPECT_LE(r.new_edge_fraction_by_conn.back().mean(),
            r.new_edge_fraction_by_conn.front().mean());
}

// ---------------------------------------------------------------------------
// TextTable.
// ---------------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumnsWithRule) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvUsesCommas) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Fmt, FormatsFixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_ci(1.5, 0.25, 2), "1.50 +/- 0.25");
}

TEST(Banner, ContainsExperimentId) {
  std::ostringstream os;
  print_banner(os, "Figure 5", "forwarder set size");
  EXPECT_NE(os.str().find("Figure 5"), std::string::npos);
}
