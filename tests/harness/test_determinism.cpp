// Cross-thread-count determinism regression tests (and, under the `tsan`
// preset, the full-scenario race stressor).
//
// The replication layer's contract is that the thread pool is invisible in
// the results: seed s produces one exact ScenarioResult, bit for bit, whether
// replicates run serially or across any pool size. PR 1 concentrated the hot
// path into shared-looking (but per-replicate) caches, so this is the test
// that would catch a cache accidentally shared across replicate threads —
// EXPECT_DOUBLE_EQ tolerance would mask exactly the low-bit divergence such a
// leak produces first, hence the bit_cast comparisons.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "harness/replicate.hpp"
#include "parallel/thread_pool.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ScenarioConfig stress_config(std::uint64_t seed = 17) {
  ScenarioConfig cfg = paper_default_config(seed);
  cfg.overlay.node_count = 15;
  cfg.overlay.degree = 3;
  cfg.overlay.malicious_fraction = 0.2;  // exercise the adversarial branches
  cfg.pair_count = 6;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(20.0);
  return cfg;
}

/// Bitwise double equality: distinguishes -0.0 from 0.0 and admits no ULP
/// slack, because the determinism contract is *bitwise* reproduction.
void expect_biteq(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expect_biteq(const std::vector<double>& a, const std::vector<double>& b,
                  const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]), std::bit_cast<std::uint64_t>(b[i]))
        << what << "[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

void expect_same_results(const ReplicatedResult& a, const ReplicatedResult& b) {
  EXPECT_EQ(a.replicates, b.replicates);
  expect_biteq(a.good_payoff.mean(), b.good_payoff.mean(), "good_payoff.mean");
  expect_biteq(a.good_payoff.variance(), b.good_payoff.variance(), "good_payoff.var");
  expect_biteq(a.member_payoff.mean(), b.member_payoff.mean(), "member_payoff.mean");
  expect_biteq(a.forwarder_set_size.mean(), b.forwarder_set_size.mean(), "set_size.mean");
  expect_biteq(a.avg_path_length.mean(), b.avg_path_length.mean(), "path_length.mean");
  expect_biteq(a.path_quality.mean(), b.path_quality.mean(), "path_quality.mean");
  expect_biteq(a.initiator_utility.mean(), b.initiator_utility.mean(), "utility.mean");
  expect_biteq(a.initiator_spend.mean(), b.initiator_spend.mean(), "spend.mean");
  expect_biteq(a.routing_efficiency.mean(), b.routing_efficiency.mean(), "efficiency.mean");
  expect_biteq(a.connection_latency.mean(), b.connection_latency.mean(), "latency.mean");
  expect_biteq(a.pooled_good_payoffs, b.pooled_good_payoffs, "pooled_good_payoffs");
  expect_biteq(a.pooled_member_payoffs, b.pooled_member_payoffs, "pooled_member_payoffs");
  ASSERT_EQ(a.new_edge_fraction_by_conn.size(), b.new_edge_fraction_by_conn.size());
  for (std::size_t j = 0; j < a.new_edge_fraction_by_conn.size(); ++j) {
    expect_biteq(a.new_edge_fraction_by_conn[j].mean(),
                 b.new_edge_fraction_by_conn[j].mean(), "new_edge_fraction.mean");
  }
  EXPECT_EQ(a.total_reformations, b.total_reformations);
  EXPECT_EQ(a.total_churn_events, b.total_churn_events);
  EXPECT_EQ(a.all_payments_conserved, b.all_payments_conserved);
  // Fault/robustness aggregates (all zero outside fault mode, but the
  // contract is bitwise either way).
  EXPECT_EQ(a.total_connections_completed, b.total_connections_completed);
  EXPECT_EQ(a.total_connections_failed, b.total_connections_failed);
  EXPECT_EQ(a.total_setup_attempts, b.total_setup_attempts);
  EXPECT_EQ(a.total_ack_timeouts, b.total_ack_timeouts);
  EXPECT_EQ(a.total_crashes, b.total_crashes);
  EXPECT_EQ(a.total_messages_dropped, b.total_messages_dropped);
  EXPECT_EQ(a.total_keepalives_sent, b.total_keepalives_sent);
  EXPECT_EQ(a.total_keepalives_delivered, b.total_keepalives_delivered);
  expect_biteq(a.delivery_ratio.mean(), b.delivery_ratio.mean(), "delivery_ratio.mean");
  expect_biteq(a.setup_time.mean(), b.setup_time.mean(), "setup_time.mean");
  expect_biteq(a.setup_time.variance(), b.setup_time.variance(), "setup_time.var");
  expect_biteq(a.time_to_detect.mean(), b.time_to_detect.mean(), "time_to_detect.mean");
  // Engine counters: identical runs schedule/cancel/fire the same events.
  EXPECT_EQ(a.total_engine_events_scheduled, b.total_engine_events_scheduled);
  EXPECT_EQ(a.total_engine_events_cancelled, b.total_engine_events_cancelled);
  EXPECT_EQ(a.total_engine_events_fired, b.total_engine_events_fired);
  EXPECT_EQ(a.total_engine_callback_heap_allocs, b.total_engine_callback_heap_allocs);
  EXPECT_EQ(a.total_engine_cross_shard_messages, b.total_engine_cross_shard_messages);
  EXPECT_EQ(a.total_engine_window_barriers, b.total_engine_window_barriers);
  // Settlement-lifecycle outcomes: identical runs terminalise the same
  // settlements the same way and move the same milli-credits.
  EXPECT_EQ(a.total_settlements_closed, b.total_settlements_closed);
  EXPECT_EQ(a.total_settlements_abandoned, b.total_settlements_abandoned);
  EXPECT_EQ(a.total_settlements_expired, b.total_settlements_expired);
  EXPECT_EQ(a.total_settlements_prorata, b.total_settlements_prorata);
  EXPECT_EQ(a.total_claims_submitted, b.total_claims_submitted);
  EXPECT_EQ(a.total_claims_lost, b.total_claims_lost);
  EXPECT_EQ(a.total_claims_rejected, b.total_claims_rejected);
  EXPECT_EQ(a.total_claims_after_terminal, b.total_claims_after_terminal);
  EXPECT_EQ(a.total_settlement_escrow_milli, b.total_settlement_escrow_milli);
  EXPECT_EQ(a.total_settlement_paid_milli, b.total_settlement_paid_milli);
  EXPECT_EQ(a.total_settlement_refunded_milli, b.total_settlement_refunded_milli);
  EXPECT_EQ(a.all_settlements_reconciled, b.all_settlements_reconciled);
  // Transport-plane counters: the Sim backend frames the same messages in
  // the same order every run, so these are as deterministic as the engine
  // counters above.
  EXPECT_EQ(a.total_transport_frames_sent, b.total_transport_frames_sent);
  EXPECT_EQ(a.total_transport_frames_delivered, b.total_transport_frames_delivered);
  EXPECT_EQ(a.total_transport_frames_dropped, b.total_transport_frames_dropped);
  EXPECT_EQ(a.total_transport_frames_rejected, b.total_transport_frames_rejected);
  EXPECT_EQ(a.total_transport_reconnects, b.total_transport_reconnects);
  EXPECT_EQ(a.total_transport_backoff_retries, b.total_transport_backoff_retries);
  EXPECT_EQ(a.total_transport_heartbeat_timeouts, b.total_transport_heartbeat_timeouts);
  EXPECT_EQ(a.total_transport_deadline_expiries, b.total_transport_deadline_expiries);
}

ScenarioConfig faulty_stress_config(std::uint64_t seed = 23) {
  ScenarioConfig cfg = stress_config(seed);
  cfg.fault.link_loss = 0.05;
  cfg.fault.delay_jitter = 0.3;
  cfg.fault.crash_rate_per_hour = 4.0;
  cfg.fault.crash_recovery_mean = sim::minutes(10.0);
  cfg.fault.probe_false_negative = 0.1;
  cfg.async_setup.attempt_deadline = sim::minutes(3.0);
  cfg.data_phase.duration = 60.0;
  cfg.data_phase.keepalive_interval = 10.0;
  return cfg;
}

ScenarioConfig chaotic_settlement_config(std::uint64_t seed = 29) {
  ScenarioConfig cfg = faulty_stress_config(seed);
  cfg.fault.bank.claim_loss = 0.2;
  cfg.fault.bank.claim_delay_mean = sim::minutes(4.0);
  cfg.fault.bank.initiator_crash = 0.3;
  cfg.fault.bank.forwarder_crash = 0.15;
  cfg.fault.bank.claim_deadline = sim::minutes(20.0);
  cfg.fault.bank.close_after = sim::minutes(8.0);
  return cfg;
}

ReplicatedResult run_with_pool_size(std::size_t threads, std::size_t replicates) {
  parallel::ThreadPool pool(threads);
  return run_replicated(stress_config(), replicates, &pool);
}

}  // namespace

TEST(Determinism, BitwiseIdenticalAcrossPoolSizes) {
  constexpr std::size_t kReplicates = 5;
  const ReplicatedResult serial = run_replicated(stress_config(), kReplicates, nullptr);

  // The issue-mandated matrix: 1, 2, and hardware_concurrency workers.
  std::vector<std::size_t> pool_sizes{1, 2,
      std::max<std::size_t>(1, std::thread::hardware_concurrency())};
  for (std::size_t threads : pool_sizes) {
    SCOPED_TRACE("pool size " + std::to_string(threads));
    expect_same_results(serial, run_with_pool_size(threads, kReplicates));
  }
}

TEST(Determinism, RepeatedParallelRunsAgree) {
  // Two runs on the *same* pool size must also agree: catches any residual
  // state leaking between batches through the pool itself.
  const ReplicatedResult a = run_with_pool_size(2, 4);
  const ReplicatedResult b = run_with_pool_size(2, 4);
  expect_same_results(a, b);
}

TEST(Determinism, FullScenarioRaceStress) {
  // The TSan payload: more replicates than workers so the queue stays hot,
  // each replicate a full simulate-settle-aggregate cycle touching every
  // subsystem (overlay, probing, history, decision caches, bank). Any write
  // actually shared across replicate threads is both a TSan report and,
  // almost always, a bitwise divergence in the sibling tests above.
  parallel::ThreadPool pool(4);
  const ReplicatedResult r = run_replicated(stress_config(), 8, &pool);
  EXPECT_EQ(r.replicates, 8u);
  EXPECT_TRUE(r.all_payments_conserved);
  EXPECT_GT(r.connection_latency.mean(), 0.0);
}

TEST(Determinism, FaultKnobsOffAreBitwiseInert) {
  // Tuning the async-setup and data-phase knobs must not move a single bit
  // while the fault config itself stays all-off: the scenario must take the
  // original synchronous path and never consult those knobs.
  const ReplicatedResult baseline = run_replicated(stress_config(), 3, nullptr);

  ScenarioConfig tweaked = stress_config();
  ASSERT_FALSE(tweaked.fault.enabled());
  tweaked.async_setup.max_attempts = 3;
  tweaked.async_setup.backoff_base = 7.0;
  tweaked.async_setup.attempt_deadline = sim::minutes(1.0);
  tweaked.data_phase.duration = 5.0;
  tweaked.data_phase.keepalive_interval = 1.0;
  expect_same_results(baseline, run_replicated(tweaked, 3, nullptr));
}

TEST(Determinism, FaultModeBitwiseIdenticalAcrossPoolSizes) {
  // The fault-mode machinery (injector streams, async setup, keepalive
  // layer) must honour the same pool-invisibility contract as the
  // synchronous path.
  const ReplicatedResult serial = run_replicated(faulty_stress_config(), 4, nullptr);
  EXPECT_GT(serial.total_crashes, 0u) << "config must actually exercise fault mode";
  EXPECT_GT(serial.total_keepalives_sent, 0u);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("pool size " + std::to_string(threads));
    parallel::ThreadPool pool(threads);
    expect_same_results(serial, run_replicated(faulty_stress_config(), 4, &pool));
  }
}

TEST(Determinism, BankFaultKnobsOffAreBitwiseInert) {
  // The lifecycle's *tuning* knobs (deadline, close delay, claim spread) are
  // only consulted once some bank fault (or lifecycle=true) switches the
  // settlement phase on; with the bank plane all-off they must not move a
  // bit — message-fault mode or not.
  const ReplicatedResult baseline = run_replicated(faulty_stress_config(), 3, nullptr);

  ScenarioConfig tweaked = faulty_stress_config();
  ASSERT_FALSE(tweaked.fault.bank.enabled());
  tweaked.fault.bank.claim_deadline = sim::minutes(2.0);
  tweaked.fault.bank.close_after = sim::minutes(1.0);
  tweaked.fault.bank.claim_spread = sim::minutes(0.5);
  expect_same_results(baseline, run_replicated(tweaked, 3, nullptr));
}

TEST(Determinism, BankFaultModeBitwiseIdenticalAcrossPoolSizes) {
  // The settlement lifecycle (event-driven claims, crashes, deadline sweep,
  // audit reconciliation) must honour the same pool-invisibility contract.
  const ReplicatedResult serial = run_replicated(chaotic_settlement_config(), 4, nullptr);
  EXPECT_GT(serial.total_settlements_closed + serial.total_settlements_abandoned +
                serial.total_settlements_expired,
            0u);
  EXPECT_GT(serial.total_claims_lost, 0u) << "config must actually lose claims";
  EXPECT_TRUE(serial.all_settlements_reconciled);
  EXPECT_TRUE(serial.all_payments_conserved);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("pool size " + std::to_string(threads));
    parallel::ThreadPool pool(threads);
    expect_same_results(serial, run_replicated(chaotic_settlement_config(), 4, &pool));
  }
}

TEST(Determinism, CleanLifecycleSettlesEverythingClosed) {
  // lifecycle=true with every fault probability at zero: the event-driven
  // phase runs, but every claim arrives and every initiator closes — all
  // settlements must end Closed with nothing lost, abandoned, or expired.
  ScenarioConfig cfg = stress_config();
  cfg.fault.bank.lifecycle = true;
  const ReplicatedResult r = run_replicated(cfg, 3, nullptr);
  EXPECT_EQ(r.total_settlements_closed, 3u * cfg.pair_count);
  EXPECT_EQ(r.total_settlements_abandoned, 0u);
  EXPECT_EQ(r.total_settlements_expired, 0u);
  EXPECT_EQ(r.total_claims_lost, 0u);
  EXPECT_EQ(r.total_claims_after_terminal, 0u);
  EXPECT_TRUE(r.all_settlements_reconciled);
  EXPECT_TRUE(r.all_payments_conserved);
  EXPECT_EQ(r.total_settlement_escrow_milli,
            r.total_settlement_paid_milli + r.total_settlement_refunded_milli);
}
