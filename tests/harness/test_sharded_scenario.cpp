// Sharded scale-scenario contracts (src/harness/sharded_scenario.*):
// K = 1 reproduces the serial oracle digest bitwise, fixed {seed, K, window}
// is deterministic across thread-pool sizes, per-shard counters sum to the
// totals, and the claim ledger conserves (every forwarded hop settles).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "harness/sharded_scenario.hpp"
#include "parallel/thread_pool.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ShardedScenarioConfig small_config(std::uint64_t seed = 41) {
  ShardedScenarioConfig cfg;
  cfg.seed = seed;
  cfg.node_count = 240;
  cfg.degree = 6;
  cfg.shard_count = 4;
  cfg.window = 30.0;
  cfg.duration = sim::minutes(40.0);
  cfg.join_window = sim::minutes(5.0);
  cfg.session_mean = sim::minutes(25.0);
  cfg.offline_gap_mean = sim::minutes(10.0);
  cfg.connection_interval_mean = sim::minutes(1.5);
  return cfg;
}

void expect_same_model(const ShardedScenarioResult& a, const ShardedScenarioResult& b) {
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.connections_launched, b.connections_launched);
  EXPECT_EQ(a.connections_acked, b.connections_acked);
  EXPECT_EQ(a.ack_timeouts, b.ack_timeouts);
  EXPECT_EQ(a.no_candidate, b.no_candidate);
  EXPECT_EQ(a.hops_forwarded, b.hops_forwarded);
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.claims_settled, b.claims_settled);
  EXPECT_EQ(a.probes, b.probes);
}

}  // namespace

TEST(ShardedScenario, SingleShardMatchesSerialOracleBitwise) {
  // The whole point of the windowed drive: at K = 1 it is the *same
  // computation* as the plain serial Simulator, digest for digest — not
  // "statistically close", identical.
  ShardedScenarioConfig cfg = small_config();
  cfg.shard_count = 1;

  const ShardedScenarioResult oracle = run_serial_oracle(cfg);
  const ShardedScenarioResult sharded = run_sharded_scenario(cfg, nullptr);

  expect_same_model(oracle, sharded);
  EXPECT_NE(oracle.digest, 0u);
  // The sanity floor: the workload actually exercised every subsystem.
  EXPECT_GT(oracle.connections_acked, 0u);
  EXPECT_GT(oracle.churn_events, 0u);
  EXPECT_GT(oracle.probes, 0u);
  // K = 1: nothing ever crosses a shard boundary, but the windowed drive
  // still barriers (the oracle, driven without windows, never does).
  EXPECT_EQ(sharded.cross_shard_messages, 0u);
  EXPECT_GT(sharded.window_barriers, 0u);
  EXPECT_EQ(oracle.cross_shard_messages, 0u);
  EXPECT_EQ(oracle.window_barriers, 0u);
}

TEST(ShardedScenario, FixedSeedShardCountWindowIsDeterministicAcrossPools) {
  const ShardedScenarioConfig cfg = small_config();
  const ShardedScenarioResult serial = run_sharded_scenario(cfg, nullptr);
  EXPECT_GT(serial.cross_shard_messages, 0u) << "K = 4 must actually route cross-shard";

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("pool size " + std::to_string(threads));
    parallel::ThreadPool pool(threads);
    const ShardedScenarioResult r = run_sharded_scenario(cfg, &pool);
    expect_same_model(serial, r);
    // Engine counters are deterministic too for fixed {seed, K, window}.
    EXPECT_EQ(serial.cross_shard_messages, r.cross_shard_messages);
    EXPECT_EQ(serial.window_barriers, r.window_barriers);
    EXPECT_EQ(serial.settlement_batches, r.settlement_batches);
    EXPECT_EQ(serial.engine.scheduled, r.engine.scheduled);
    EXPECT_EQ(serial.engine.cancelled, r.engine.cancelled);
    EXPECT_EQ(serial.engine.fired, r.engine.fired);
  }
}

TEST(ShardedScenario, DifferentSeedsDiverge) {
  const ShardedScenarioResult a = run_sharded_scenario(small_config(41), nullptr);
  const ShardedScenarioResult b = run_sharded_scenario(small_config(42), nullptr);
  EXPECT_NE(a.digest, b.digest);
}

TEST(ShardedScenario, PerShardCountersSumToTotals) {
  const ShardedScenarioConfig cfg = small_config();
  const ShardedScenarioResult r = run_sharded_scenario(cfg, nullptr);
  ASSERT_EQ(r.per_shard.size(), cfg.shard_count);

  ShardCounters sum;
  for (const ShardCounters& s : r.per_shard) {
    sum.connections_launched += s.connections_launched;
    sum.connections_acked += s.connections_acked;
    sum.ack_timeouts += s.ack_timeouts;
    sum.no_candidate += s.no_candidate;
    sum.hops_forwarded += s.hops_forwarded;
    sum.churn_events += s.churn_events;
    sum.departures += s.departures;
    sum.claims_pending += s.claims_pending;
    sum.claims_settled += s.claims_settled;
  }
  EXPECT_EQ(sum.connections_launched, r.connections_launched);
  EXPECT_EQ(sum.connections_acked, r.connections_acked);
  EXPECT_EQ(sum.ack_timeouts, r.ack_timeouts);
  EXPECT_EQ(sum.no_candidate, r.no_candidate);
  EXPECT_EQ(sum.hops_forwarded, r.hops_forwarded);
  EXPECT_EQ(sum.churn_events, r.churn_events);
  EXPECT_EQ(sum.departures, r.departures);
  EXPECT_EQ(sum.claims_settled, r.claims_settled);
}

TEST(ShardedScenario, ClaimLedgerConserves) {
  const ShardedScenarioResult r = run_sharded_scenario(small_config(), nullptr);
  // finish() drains residual claims: everything forwarded must settle, and
  // nothing can remain pending.
  EXPECT_EQ(r.claims_settled, r.hops_forwarded);
  std::uint64_t pending = 0;
  for (const ShardCounters& s : r.per_shard) pending += s.claims_pending;
  EXPECT_EQ(pending, 0u);
  EXPECT_GT(r.settlement_batches, 0u);
}

TEST(ShardedScenario, CancelHeavyRegime) {
  // The workload contract: acks normally beat the timer, so cancels dominate
  // timeouts — the slot-map event queue's target shape.
  const ShardedScenarioResult r = run_sharded_scenario(small_config(), nullptr);
  EXPECT_GT(r.connections_acked, r.ack_timeouts);
  EXPECT_GT(r.engine.cancelled, 0u);
  // Acked connection <=> a cancelled ack timer (plus any other cancels).
  EXPECT_GE(r.engine.cancelled, r.connections_acked);
}
