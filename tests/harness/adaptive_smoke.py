#!/usr/bin/env python3
"""Kill-and-resume smoke gate for the adaptive replication harness.

Drives the ``adaptive_sweep`` example three ways and asserts the
checkpoint/resume invariance claim of DESIGN.md §3.12:

1. **Baseline** — one uninterrupted run, no checkpointing at all.
2. **Torture loop** — the same sweep with ``--checkpoint`` and
   ``--kill-after-batch 1``: the process dies (``_Exit(9)``, a SIGKILL
   stand-in) immediately after *every* checkpoint save and is restarted
   until a run finally completes by replaying finished cells from the
   checkpoint. This exercises a crash at every single batch boundary.
3. **Byte comparison** — the BENCH_adaptive_sweep.json written by the
   surviving run must equal the baseline's byte-for-byte (all aggregates
   are serialised as IEEE-754 bit patterns, so "equal" means bit-exact).

Registered as the tier-1 ``adaptive.smoke`` ctest (examples/CMakeLists.txt).
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
from pathlib import Path

SEED = "977"
# 10 replicates vs the default min_batch of 8 forces a 8 + 2 batch split, so
# at least one injected crash lands mid-cell (partial accumulator state) and
# the resume path is exercised beyond whole-cell replay.
REPLICATES = "10"
MAX_RESTARTS = 50
KILL_EXIT_CODE = 9


def run(binary: Path, outdir: Path, extra: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["P2PANON_CSV_DIR"] = str(outdir)
    # The gate must control its own knobs even under a customised CI env.
    for var in ("P2PANON_ADAPTIVE", "P2PANON_CHECKPOINT", "P2PANON_KILL_AFTER_BATCH",
                "P2PANON_EPS"):
        env.pop(var, None)
    return subprocess.run(
        [str(binary), SEED, REPLICATES, *extra],
        env=env, capture_output=True, text=True, timeout=240, check=False)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, type=Path,
                        help="path to the adaptive_sweep example binary")
    parser.add_argument("--workdir", required=True, type=Path,
                        help="scratch directory (recreated on every run)")
    args = parser.parse_args()

    if args.workdir.exists():
        shutil.rmtree(args.workdir)
    baseline_dir = args.workdir / "baseline"
    resumed_dir = args.workdir / "resumed"
    baseline_dir.mkdir(parents=True)
    resumed_dir.mkdir(parents=True)

    # 1. Uninterrupted baseline, no checkpoint plane involved at all.
    clean = run(args.binary, baseline_dir, [])
    if clean.returncode != 0:
        print(clean.stdout, clean.stderr, sep="\n")
        print("FAIL: baseline run did not complete")
        return 1
    baseline = (baseline_dir / "BENCH_adaptive_sweep.json").read_bytes()

    # 2. Crash after every checkpoint save; restart until a run survives.
    ckpt = resumed_dir / "sweep.ckpt"
    crashes = 0
    last = None
    for _ in range(MAX_RESTARTS):
        last = run(args.binary, resumed_dir,
                   ["--checkpoint", str(ckpt), "--kill-after-batch", "1"])
        if last.returncode == KILL_EXIT_CODE:
            crashes += 1
            if not ckpt.exists():
                print("FAIL: killed run left no checkpoint behind")
                return 1
            continue
        break
    else:
        print(f"FAIL: no run completed within {MAX_RESTARTS} restarts")
        return 1

    if last.returncode != 0:
        print(last.stdout, last.stderr, sep="\n")
        print(f"FAIL: resumed run exited with {last.returncode}")
        return 1
    if crashes == 0:
        print("FAIL: the kill hook never fired; the gate exercised nothing")
        return 1
    if "(resumed)" not in last.stdout:
        print(last.stdout)
        print("FAIL: surviving run did not resume from the checkpoint")
        return 1

    # 3. The surviving run's aggregates must be bit-exact vs the baseline.
    resumed = (resumed_dir / "BENCH_adaptive_sweep.json").read_bytes()
    if resumed != baseline:
        print("FAIL: resumed aggregates differ from the uninterrupted run")
        print("--- baseline ---")
        print(baseline.decode(errors="replace"))
        print("--- resumed ---")
        print(resumed.decode(errors="replace"))
        return 1

    print(f"PASS: {crashes} injected crashes, resumed output bit-identical to baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
