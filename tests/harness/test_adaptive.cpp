// Adaptive sequential stopping + checkpoint/resume (DESIGN.md §3.12).
//
// The load-bearing properties:
//  * off-mode is bitwise-inert (identical to the fixed-count harness),
//  * checkpointing never changes results, only where a crash can restart,
//  * a killed run resumed from its checkpoint equals an uninterrupted run
//    bit-for-bit (death tests inject the kill via --kill-after-batch),
//  * adaptivity stops early on tight cells and respects the hard cap.
#include "harness/adaptive.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "harness/checkpoint.hpp"
#include "harness/replicate.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

std::filesystem::path temp_path(const std::string& name) {
  const auto p = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove(p);
  return p;
}

/// Deterministic synthetic replicate: two columns, a mean-like value with
/// small spread and an exact 0/1 pass flag.
std::vector<double> synthetic(std::size_t i, double spread) {
  return {5.0 + spread * std::sin(static_cast<double>(i) * 0.73), 1.0};
}

void expect_acc_bits_eq(const metrics::Accumulator& a, const metrics::Accumulator& b) {
  const auto ra = a.raw();
  const auto rb = b.raw();
  EXPECT_EQ(ra.n, rb.n);
  EXPECT_EQ(ra.mean_bits, rb.mean_bits);
  EXPECT_EQ(ra.m2_bits, rb.m2_bits);
  EXPECT_EQ(ra.min_bits, rb.min_bits);
  EXPECT_EQ(ra.max_bits, rb.max_bits);
}

ScenarioConfig tiny_config(std::uint64_t seed = 1) {
  ScenarioConfig cfg = paper_default_config(seed);
  cfg.overlay.node_count = 15;
  cfg.overlay.degree = 3;
  cfg.pair_count = 5;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(20.0);
  return cfg;
}

void expect_replicated_bits_eq(const ReplicatedResult& a, const ReplicatedResult& b) {
  EXPECT_EQ(a.replicates, b.replicates);
  expect_acc_bits_eq(a.good_payoff, b.good_payoff);
  expect_acc_bits_eq(a.forwarder_set_size, b.forwarder_set_size);
  expect_acc_bits_eq(a.delivery_ratio, b.delivery_ratio);
  expect_acc_bits_eq(a.connection_latency, b.connection_latency);
  EXPECT_EQ(a.pooled_good_payoffs, b.pooled_good_payoffs);
  EXPECT_EQ(a.pooled_member_payoffs, b.pooled_member_payoffs);
  EXPECT_EQ(a.total_reformations, b.total_reformations);
  EXPECT_EQ(a.total_churn_events, b.total_churn_events);
  EXPECT_EQ(a.total_settlement_escrow_milli, b.total_settlement_escrow_milli);
  EXPECT_EQ(a.all_payments_conserved, b.all_payments_conserved);
  ASSERT_EQ(a.new_edge_fraction_by_conn.size(), b.new_edge_fraction_by_conn.size());
  for (std::size_t i = 0; i < a.new_edge_fraction_by_conn.size(); ++i) {
    expect_acc_bits_eq(a.new_edge_fraction_by_conn[i], b.new_edge_fraction_by_conn[i]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Flag parsing.
// ---------------------------------------------------------------------------

TEST(ParseAdaptiveFlags, ConsumesFlagsAndCompactsPositionals) {
  std::vector<std::string> store = {"prog",         "42",   "--adaptive",
                                    "--eps",        "0.1",  "--checkpoint",
                                    "ck.txt",       "7",    "--kill-after-batch",
                                    "2"};
  std::vector<char*> argv;
  for (auto& s : store) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  const AdaptiveConfig cfg = parse_adaptive_flags(argc, argv.data(), 0.05);
  EXPECT_TRUE(cfg.adaptive);
  EXPECT_DOUBLE_EQ(cfg.eps, 0.1);
  EXPECT_EQ(cfg.checkpoint, "ck.txt");
  EXPECT_EQ(cfg.kill_after_batches, 2u);
  // Positionals survive, in order, with the sweep flags spliced out.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "42");
  EXPECT_STREQ(argv[2], "7");
}

TEST(ParseAdaptiveFlags, DefaultIsInert) {
  std::vector<std::string> store = {"prog", "13"};
  std::vector<char*> argv;
  for (auto& s : store) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  const AdaptiveConfig cfg = parse_adaptive_flags(argc, argv.data(), 0.02);
  EXPECT_FALSE(cfg.adaptive);
  EXPECT_DOUBLE_EQ(cfg.eps, 0.02);
  EXPECT_TRUE(cfg.checkpoint.empty());
  EXPECT_EQ(cfg.kill_after_batches, 0u);
  EXPECT_EQ(argc, 2);
}

// ---------------------------------------------------------------------------
// Stopping arithmetic.
// ---------------------------------------------------------------------------

TEST(AnytimeStop, NeverStopsBelowTwoSamples) {
  metrics::Accumulator acc;
  acc.add(5.0);  // t interval degenerates to half-width 0 here
  EXPECT_FALSE(anytime_stop({{&acc, 100.0, false}}, {}, 0.05, 1));
  acc.add(5.0);
  EXPECT_TRUE(anytime_stop({{&acc, 100.0, false}}, {}, 0.05, 1));
}

TEST(AnytimeStop, RelativeTargetOnZeroMeanNeverStops) {
  metrics::Accumulator acc;
  for (int i = 0; i < 50; ++i) acc.add(0.0);
  // eps_abs = eps * |mean| = 0: conservative "run to the cap".
  EXPECT_FALSE(anytime_stop({{&acc, 0.1, true}}, {}, 0.05, 1));
}

TEST(AnytimeStop, NoTargetsMeansNoStopping) {
  EXPECT_FALSE(anytime_stop({}, {}, 0.05, 1));
}

TEST(AnytimeStop, PassRateNeedsTrialsAndAllPassVolume) {
  EXPECT_FALSE(anytime_stop({}, {{0, 0, 0.8}}, 0.05, 1));
  // 10 clean trials are nowhere near enough for an LCB of 0.8...
  EXPECT_FALSE(anytime_stop({}, {{10, 10, 0.8}}, 0.05, 1));
  // ...but a few hundred are.
  EXPECT_TRUE(anytime_stop({}, {{400, 400, 0.8}}, 0.05, 2));
  // A failing record at the same volume does not clear the bar.
  EXPECT_FALSE(anytime_stop({}, {{200, 400, 0.8}}, 0.05, 2));
}

TEST(PlanNextBatch, RespectsRemainingBudgetAndGeometricGrowth) {
  metrics::Accumulator noisy;
  for (int i = 0; i < 8; ++i) noisy.add(i % 2 ? 100.0 : 0.0);
  const std::vector<StopTarget> targets = {{&noisy, 1e-6, false}};  // wants huge n
  EXPECT_EQ(plan_next_batch(targets, {}, 0.05, 1, 10, 10, 4), 0u);  // done == cap
  // Growth is capped at max(min_batch, done) even when Hoeffding wants more.
  EXPECT_EQ(plan_next_batch(targets, {}, 0.05, 2, 8, 1000, 4), 8u);
  EXPECT_EQ(plan_next_batch(targets, {}, 0.05, 2, 2, 1000, 4), 4u);
  // Never exceeds the remaining budget.
  EXPECT_EQ(plan_next_batch(targets, {}, 0.05, 3, 8, 11, 4), 3u);
}

TEST(PlanNextBatch, FirstBatchIsMinBatch) {
  metrics::Accumulator empty;
  EXPECT_EQ(plan_next_batch({{&empty, 0.05, false}}, {}, 0.05, 1, 0, 100, 8), 8u);
}

// ---------------------------------------------------------------------------
// AdaptiveRunner.
// ---------------------------------------------------------------------------

namespace {

std::vector<MetricSpec> two_specs() {
  using Kind = MetricSpec::Kind;
  return {{"value", Kind::kMean, 0.0, false, 0.0},
          {"passed", Kind::kPassRate, 0.0, false, 0.8}};
}

}  // namespace

TEST(AdaptiveRunner, FixedModeMatchesManualFold) {
  AdaptiveRunner runner(AdaptiveConfig{}, two_specs());
  const auto cell = runner.run_cell("fixed", 1, 16,
                                    [](std::size_t i) { return synthetic(i, 1.0); });
  metrics::Accumulator manual;
  for (std::size_t i = 0; i < 16; ++i) manual.add(synthetic(i, 1.0)[0]);
  expect_acc_bits_eq(cell.metrics[0], manual);
  EXPECT_EQ(cell.outcome.replicates_used, 16u);
  EXPECT_EQ(cell.outcome.replicates_planned, 16u);
  EXPECT_EQ(cell.outcome.batches, 1u);  // fixed fast path: one batch
  EXPECT_FALSE(cell.outcome.stopped_early);
  EXPECT_FALSE(cell.outcome.resumed);
  EXPECT_TRUE(cell.outcome.complete);
}

TEST(AdaptiveRunner, ParallelFoldMatchesSerialBitwise) {
  parallel::ThreadPool pool(4);
  AdaptiveRunner runner(AdaptiveConfig{}, two_specs());
  const auto serial = runner.run_cell("par", 1, 24,
                                      [](std::size_t i) { return synthetic(i, 1.0); });
  const auto par = runner.run_cell("par", 1, 24,
                                   [](std::size_t i) { return synthetic(i, 1.0); }, &pool);
  expect_acc_bits_eq(serial.metrics[0], par.metrics[0]);
  expect_acc_bits_eq(serial.metrics[1], par.metrics[1]);
}

TEST(AdaptiveRunner, CheckpointingAloneIsBitwiseInert) {
  const auto ckpt = temp_path("adaptive_inert.ckpt");
  AdaptiveRunner plain(AdaptiveConfig{}, two_specs());
  AdaptiveConfig with_ckpt;
  with_ckpt.checkpoint = ckpt.string();
  with_ckpt.min_batch = 4;  // forces several doubling batches over 24 replicates
  AdaptiveRunner saver(with_ckpt, two_specs());

  const auto a = plain.run_cell("cell", 7, 24,
                                [](std::size_t i) { return synthetic(i, 1.0); });
  const auto b = saver.run_cell("cell", 7, 24,
                                [](std::size_t i) { return synthetic(i, 1.0); });
  expect_acc_bits_eq(a.metrics[0], b.metrics[0]);
  expect_acc_bits_eq(a.metrics[1], b.metrics[1]);
  EXPECT_EQ(a.outcome.replicates_used, b.outcome.replicates_used);
  EXPECT_GT(b.outcome.batches, 1u);
  EXPECT_TRUE(std::filesystem::exists(ckpt));
}

TEST(AdaptiveRunner, CompletedCellReplaysFromCheckpointWithoutRerunning) {
  const auto ckpt = temp_path("adaptive_replay.ckpt");
  AdaptiveConfig cfg;
  cfg.checkpoint = ckpt.string();
  std::size_t calls = 0;
  const auto replicate = [&calls](std::size_t i) {
    ++calls;
    return synthetic(i, 1.0);
  };
  AdaptiveRunner first(cfg, two_specs());
  const auto a = first.run_cell("cell", 7, 12, replicate);
  EXPECT_EQ(calls, 12u);
  AdaptiveRunner second(cfg, two_specs());
  const auto b = second.run_cell("cell", 7, 12, replicate);
  EXPECT_EQ(calls, 12u);  // replayed, not recomputed
  EXPECT_TRUE(b.outcome.resumed);
  EXPECT_TRUE(b.outcome.complete);
  expect_acc_bits_eq(a.metrics[0], b.metrics[0]);
  expect_acc_bits_eq(a.metrics[1], b.metrics[1]);
}

TEST(AdaptiveRunner, FingerprintMismatchDiscardsStoredCell) {
  const auto ckpt = temp_path("adaptive_fp.ckpt");
  AdaptiveConfig cfg;
  cfg.checkpoint = ckpt.string();
  std::size_t calls = 0;
  const auto replicate = [&calls](std::size_t i) {
    ++calls;
    return synthetic(i, 1.0);
  };
  AdaptiveRunner runner(cfg, two_specs());
  (void)runner.run_cell("cell", 7, 8, replicate);
  EXPECT_EQ(calls, 8u);
  // Same key, different config fingerprint: stale state must not be merged.
  const auto b = runner.run_cell("cell", 8, 8, replicate);
  EXPECT_EQ(calls, 16u);
  EXPECT_FALSE(b.outcome.resumed);
}

TEST(AdaptiveRunner, AdaptiveStopsEarlyOnTightCell) {
  AdaptiveConfig cfg;
  cfg.adaptive = true;
  cfg.eps = 0.1;
  cfg.min_batch = 8;
  AdaptiveRunner runner(cfg, two_specs());
  // Tiny spread: the anytime interval closes far before the 400-cap; the
  // all-pass invariant record clears its 0.8 LCB in a few hundred trials.
  const auto cell = runner.run_cell("tight", 1, 400,
                                    [](std::size_t i) { return synthetic(i, 1e-3); });
  EXPECT_TRUE(cell.outcome.stopped_early);
  EXPECT_LT(cell.outcome.replicates_used, 400u);
  EXPECT_GT(cell.outcome.batches, 1u);
  EXPECT_NEAR(cell.metrics[0].mean(), 5.0, 0.01);
}

TEST(AdaptiveRunner, AdaptiveRespectsHardCapOnNoisyCell) {
  AdaptiveConfig cfg;
  cfg.adaptive = true;
  cfg.eps = 1e-9;  // unreachable target
  AdaptiveRunner runner(cfg, {{"value", MetricSpec::Kind::kMean, 0.0, false, 0.0}});
  const auto cell = runner.run_cell("noisy", 1, 32,
                                    [](std::size_t i) { return synthetic(i, 10.0); });
  EXPECT_EQ(cell.outcome.replicates_used, 32u);
  EXPECT_FALSE(cell.outcome.stopped_early);
}

TEST(AdaptiveRunner, SumColumnsAreExactAndNeverGateStopping) {
  AdaptiveConfig cfg;
  cfg.adaptive = true;
  cfg.eps = 100.0;  // would stop instantly if a kSum column could gate
  AdaptiveRunner runner(cfg, {{"count", MetricSpec::Kind::kSum, 0.0, false, 0.0}});
  const auto cell = runner.run_cell("sums", 1, 20, [](std::size_t i) {
    return std::vector<double>{static_cast<double>(i)};
  });
  EXPECT_EQ(cell.outcome.replicates_used, 20u);  // ran to the cap
  EXPECT_FALSE(cell.outcome.stopped_early);
  EXPECT_DOUBLE_EQ(cell.sums[0], 190.0);  // 0 + 1 + ... + 19, exactly
}

// The kill hook dies with std::_Exit(9) right after a checkpoint rename;
// gtest death tests fork, so the parent survives to resume from the file
// the killed child left behind — the in-process kill-and-resume gate.
TEST(AdaptiveRunnerDeathTest, KilledRunResumesBitExactly) {
  const auto ckpt = temp_path("adaptive_kill.ckpt");
  AdaptiveConfig cfg;
  cfg.checkpoint = ckpt.string();
  cfg.min_batch = 4;
  const auto replicate = [](std::size_t i) { return synthetic(i, 1.0); };

  AdaptiveConfig killing = cfg;
  killing.kill_after_batches = 2;  // dies mid-cell: 4 + 8 of 24 replicates done
  EXPECT_EXIT(
      {
        AdaptiveRunner runner(killing, two_specs());
        const auto cell = runner.run_cell("cell", 7, 24, replicate);
        (void)cell;
      },
      ::testing::ExitedWithCode(9), "");
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  AdaptiveRunner resumer(cfg, two_specs());
  const auto resumed = resumer.run_cell("cell", 7, 24, replicate);
  EXPECT_TRUE(resumed.outcome.resumed);
  EXPECT_EQ(resumed.outcome.replicates_used, 24u);

  AdaptiveRunner uninterrupted(AdaptiveConfig{}, two_specs());
  const auto clean = uninterrupted.run_cell("cell", 7, 24, replicate);
  expect_acc_bits_eq(clean.metrics[0], resumed.metrics[0]);
  expect_acc_bits_eq(clean.metrics[1], resumed.metrics[1]);
}

// ---------------------------------------------------------------------------
// Scenario-level wrapper: run_replicated_adaptive.
// ---------------------------------------------------------------------------

TEST(RunReplicatedAdaptive, OffModeIsBitwiseIdenticalToRunReplicated) {
  const ReplicatedResult fixed = run_replicated(tiny_config(), 3);
  const AdaptiveReplicatedResult wrapped =
      run_replicated_adaptive(tiny_config(), 3, AdaptiveConfig{}, {});
  expect_replicated_bits_eq(fixed, wrapped.result);
  EXPECT_EQ(wrapped.outcome.replicates_used, 3u);
  EXPECT_FALSE(wrapped.outcome.stopped_early);
  EXPECT_TRUE(wrapped.outcome.complete);
}

TEST(RunReplicatedAdaptive, TrackedIntervalsComeBackInOrder) {
  const std::vector<TrackedScenarioMetric> tracked = {
      {"delivery_ratio", &ReplicatedResult::delivery_ratio, 0.0, false},
      {"forwarder_set_size", &ReplicatedResult::forwarder_set_size, 0.0, true},
  };
  const AdaptiveReplicatedResult r =
      run_replicated_adaptive(tiny_config(), 3, AdaptiveConfig{}, tracked);
  ASSERT_EQ(r.intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(r.intervals[0].mean, r.result.delivery_ratio.mean());
  EXPECT_DOUBLE_EQ(r.intervals[1].mean, r.result.forwarder_set_size.mean());
}

TEST(RunReplicatedAdaptiveDeathTest, KilledSweepResumesBitExactly) {
  const auto ckpt = temp_path("replicate_kill.ckpt");
  AdaptiveConfig cfg;
  cfg.checkpoint = ckpt.string();
  cfg.min_batch = 2;

  AdaptiveConfig killing = cfg;
  killing.kill_after_batches = 1;  // dies after 2 of 4 replicates
  EXPECT_EXIT(
      {
        const auto r = run_replicated_adaptive(tiny_config(), 4, killing, {});
        (void)r;
      },
      ::testing::ExitedWithCode(9), "");
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  const AdaptiveReplicatedResult resumed =
      run_replicated_adaptive(tiny_config(), 4, cfg, {});
  EXPECT_TRUE(resumed.outcome.resumed);
  EXPECT_EQ(resumed.outcome.replicates_used, 4u);

  const ReplicatedResult clean = run_replicated(tiny_config(), 4);
  expect_replicated_bits_eq(clean, resumed.result);
}

// ---------------------------------------------------------------------------
// Checkpoint codec.
// ---------------------------------------------------------------------------

TEST(CheckpointCodec, DoubleEncodingIsBitExact) {
  for (const double x : {0.0, -0.0, 1.0 / 3.0, 1e-308, -1e308,
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::denorm_min()}) {
    const auto back = decode_double(encode_double(x));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(*back), std::bit_cast<std::uint64_t>(x));
  }
  EXPECT_FALSE(decode_double("not-hex").has_value());
  EXPECT_FALSE(decode_u64("xyz").has_value());
}

TEST(CheckpointCodec, SaveLoadRoundTrip) {
  const auto path = temp_path("roundtrip.ckpt");
  Checkpoint ck;
  ck.set("a.x", encode_double(-0.0));
  ck.set("a.y", "plain");
  ck.set("b.z", encode_u64(0xdeadbeefULL));
  ck.set("a.x", encode_double(2.5));  // overwrite keeps one record
  ASSERT_TRUE(ck.save(path));

  const auto loaded = Checkpoint::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_NE(loaded->find("a.x"), nullptr);
  EXPECT_EQ(decode_double(*loaded->find("a.x")), 2.5);
  EXPECT_EQ(*loaded->find("a.y"), "plain");
  EXPECT_EQ(decode_u64(*loaded->find("b.z")), 0xdeadbeefULL);
  EXPECT_EQ(loaded->find("missing"), nullptr);
}

TEST(CheckpointCodec, ErasePrefixDropsOnlyThatCell) {
  Checkpoint ck;
  ck.set("a.x", "1");
  ck.set("a.y", "2");
  ck.set("b.x", "3");
  ck.erase_prefix("a.");
  EXPECT_EQ(ck.find("a.x"), nullptr);
  EXPECT_EQ(ck.find("a.y"), nullptr);
  ASSERT_NE(ck.find("b.x"), nullptr);
  EXPECT_EQ(*ck.find("b.x"), "3");
}

TEST(CheckpointCodec, CorruptOrTruncatedFilesBehaveLikeNoCheckpoint) {
  const auto path = temp_path("corrupt.ckpt");
  Checkpoint ck;
  ck.set("a.x", "value");
  ck.set("a.y", encode_u64(42));
  ASSERT_TRUE(ck.save(path));

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());

  // Flip one payload byte: the whole-file digest must reject it.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(atomic_write_file(path, flipped));
  EXPECT_FALSE(Checkpoint::load(path).has_value());

  // A torn write (file cut mid-record) is equally rejected.
  ASSERT_TRUE(atomic_write_file(path, bytes.substr(0, bytes.size() / 2)));
  EXPECT_FALSE(Checkpoint::load(path).has_value());

  // Trailing garbage after the digest line is rejected too.
  ASSERT_TRUE(atomic_write_file(path, bytes + "trailing junk\n"));
  EXPECT_FALSE(Checkpoint::load(path).has_value());

  EXPECT_FALSE(Checkpoint::load(temp_path("never_written.ckpt")).has_value());
}

TEST(AtomicWrite, ReplacesContentAndLeavesNoTempBehind) {
  const auto path = temp_path("atomic.txt");
  ASSERT_TRUE(atomic_write_file(path, "first"));
  ASSERT_TRUE(atomic_write_file(path, "second"));
  std::ifstream in(path, std::ios::binary);
  const std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  EXPECT_EQ(bytes, "second");
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}
