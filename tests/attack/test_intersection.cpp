#include "attack/intersection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace p2panon::attack;
using p2panon::net::NodeId;

TEST(OnlineSetIntersection, StartsWithAllCandidates) {
  OnlineSetIntersection attack(10);
  EXPECT_EQ(attack.candidate_count(), 10u);
  EXPECT_FALSE(attack.identified(3));
  EXPECT_NEAR(attack.entropy_bits(), std::log2(10.0), 1e-12);
}

TEST(OnlineSetIntersection, ObservationEliminatesOffline) {
  OnlineSetIntersection attack(5);
  std::vector<NodeId> online{0, 2, 4};
  EXPECT_EQ(attack.observe(online), 2u);  // 1 and 3 eliminated
  EXPECT_EQ(attack.candidate_count(), 3u);
  EXPECT_TRUE(attack.is_candidate(0));
  EXPECT_FALSE(attack.is_candidate(1));
}

TEST(OnlineSetIntersection, IntersectionMonotone) {
  OnlineSetIntersection attack(6);
  attack.observe(std::vector<NodeId>{0, 1, 2, 3});
  const auto after_first = attack.candidate_count();
  attack.observe(std::vector<NodeId>{2, 3, 4, 5});
  EXPECT_LE(attack.candidate_count(), after_first);
  // 4 and 5 were already eliminated; candidates are now {2, 3}.
  EXPECT_EQ(attack.candidate_count(), 2u);
}

TEST(OnlineSetIntersection, CollapseToTargetIdentifies) {
  OnlineSetIntersection attack(4);
  attack.observe(std::vector<NodeId>{1, 2});
  attack.observe(std::vector<NodeId>{1, 3});
  EXPECT_TRUE(attack.identified(1));
  EXPECT_DOUBLE_EQ(attack.entropy_bits(), 0.0);
}

TEST(OnlineSetIntersection, IdentifiedFalseForWrongTarget) {
  OnlineSetIntersection attack(4);
  attack.observe(std::vector<NodeId>{1});
  EXPECT_TRUE(attack.identified(1));
  EXPECT_FALSE(attack.identified(2));
}

TEST(OnlineSetIntersection, RepeatedSameObservationIdempotent) {
  OnlineSetIntersection attack(5);
  std::vector<NodeId> online{0, 1, 2};
  attack.observe(online);
  EXPECT_EQ(attack.observe(online), 0u);
  EXPECT_EQ(attack.candidate_count(), 3u);
  EXPECT_EQ(attack.observations(), 2u);
}

TEST(OnlineSetIntersection, OutOfRangeIdsIgnored) {
  OnlineSetIntersection attack(3);
  attack.observe(std::vector<NodeId>{0, 1, 2, 99});
  EXPECT_EQ(attack.candidate_count(), 3u);
}

TEST(PredecessorAttack, NoObservationsNoCandidate) {
  PredecessorAttack attack(10);
  EXPECT_EQ(attack.top_candidate(), p2panon::net::kInvalidNode);
  EXPECT_DOUBLE_EQ(attack.top_candidate_share(), 0.0);
}

TEST(PredecessorAttack, MostLoggedWins) {
  PredecessorAttack attack(5);
  attack.log_predecessor(2);
  attack.log_predecessor(2);
  attack.log_predecessor(4);
  EXPECT_EQ(attack.top_candidate(), 2u);
  EXPECT_NEAR(attack.top_candidate_share(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(attack.count(2), 2u);
  EXPECT_EQ(attack.observations(), 3u);
}

TEST(PredecessorAttack, DegreeOfAnonymityDropsWithSkew) {
  PredecessorAttack uniform(4), skewed(4);
  for (NodeId id = 0; id < 4; ++id) uniform.log_predecessor(id);
  for (int i = 0; i < 9; ++i) skewed.log_predecessor(0);
  skewed.log_predecessor(1);
  EXPECT_NEAR(uniform.degree_of_anonymity(), 1.0, 1e-12);
  EXPECT_LT(skewed.degree_of_anonymity(), 0.5);
}

TEST(PredecessorAttack, TieBreaksToLowestId) {
  PredecessorAttack attack(5);
  attack.log_predecessor(3);
  attack.log_predecessor(1);
  EXPECT_EQ(attack.top_candidate(), 1u);
}
