#include "attack/traffic_analysis.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace p2panon::attack;
using p2panon::net::NodeId;

namespace {

std::vector<bool> compromised_set(std::size_t n, std::initializer_list<NodeId> bad) {
  std::vector<bool> v(n, false);
  for (NodeId id : bad) v[id] = true;
  return v;
}

}  // namespace

TEST(TrafficAnalysis, CleanPathNotCompromised) {
  TrafficAnalysis ta(compromised_set(10, {9}));
  ta.observe_path(1, std::vector<NodeId>{0, 1, 2, 3});
  EXPECT_EQ(ta.paths_observed(), 1u);
  EXPECT_EQ(ta.first_hop_compromised(), 0u);
  EXPECT_EQ(ta.last_hop_compromised(), 0u);
  EXPECT_EQ(ta.end_to_end_compromised(), 0u);
}

TEST(TrafficAnalysis, FirstHopOnly) {
  TrafficAnalysis ta(compromised_set(10, {1}));
  ta.observe_path(1, std::vector<NodeId>{0, 1, 2, 3});
  EXPECT_EQ(ta.first_hop_compromised(), 1u);
  EXPECT_EQ(ta.last_hop_compromised(), 0u);
  EXPECT_EQ(ta.end_to_end_compromised(), 0u);
}

TEST(TrafficAnalysis, BothEndsCorrelates) {
  TrafficAnalysis ta(compromised_set(10, {1, 2}));
  ta.observe_path(1, std::vector<NodeId>{0, 1, 2, 3});
  EXPECT_EQ(ta.end_to_end_compromised(), 1u);
  EXPECT_DOUBLE_EQ(ta.end_to_end_rate(), 1.0);
}

TEST(TrafficAnalysis, SingleForwarderIsBothEnds) {
  TrafficAnalysis ta(compromised_set(10, {5}));
  ta.observe_path(1, std::vector<NodeId>{0, 5, 3});
  EXPECT_EQ(ta.end_to_end_compromised(), 1u);
}

TEST(TrafficAnalysis, DirectPathHasNoForwarders) {
  TrafficAnalysis ta(compromised_set(10, {0, 3}));
  ta.observe_path(1, std::vector<NodeId>{0, 3});
  EXPECT_EQ(ta.end_to_end_compromised(), 0u);
  EXPECT_EQ(ta.paths_observed(), 1u);
}

TEST(TrafficAnalysis, MiddleCompromiseLinksButDoesNotCorrelate) {
  TrafficAnalysis ta(compromised_set(10, {2}));
  ta.observe_path(7, std::vector<NodeId>{0, 1, 2, 3, 4});
  EXPECT_EQ(ta.end_to_end_compromised(), 0u);
  EXPECT_EQ(ta.largest_linked_profile(), 1u);
  EXPECT_EQ(ta.pairs_touched(), 1u);
}

TEST(TrafficAnalysis, LinkedProfileGrowsPerPair) {
  // §5 threat (3): a malicious member of the recurring set links all the
  // connections it serves via the cid.
  TrafficAnalysis ta(compromised_set(10, {2}));
  for (int k = 0; k < 5; ++k) ta.observe_path(7, std::vector<NodeId>{0, 1, 2, 3});
  ta.observe_path(8, std::vector<NodeId>{0, 2, 3});
  EXPECT_EQ(ta.largest_linked_profile(), 5u);
  EXPECT_EQ(ta.pairs_touched(), 2u);
}

TEST(TrafficAnalysis, OneLinkagePerConnectionEvenWithTwoBadHops) {
  TrafficAnalysis ta(compromised_set(10, {1, 2}));
  ta.observe_path(7, std::vector<NodeId>{0, 1, 2, 3});
  EXPECT_EQ(ta.largest_linked_profile(), 1u);
}

TEST(TrafficAnalysis, UniformBaselineFormula) {
  TrafficAnalysis ta(compromised_set(10, {0, 1}));
  EXPECT_NEAR(ta.uniform_baseline(), 0.04, 1e-12);  // (2/10)^2
  TrafficAnalysis none(compromised_set(10, {}));
  EXPECT_DOUBLE_EQ(none.uniform_baseline(), 0.0);
}

TEST(TrafficAnalysis, EmptyRateIsZero) {
  TrafficAnalysis ta(compromised_set(4, {1}));
  EXPECT_DOUBLE_EQ(ta.end_to_end_rate(), 0.0);
}

TEST(TrafficAnalysis, EndToEndRateAggregates) {
  TrafficAnalysis ta(compromised_set(6, {1, 4}));
  ta.observe_path(1, std::vector<NodeId>{0, 1, 4, 5});  // both ends bad
  ta.observe_path(1, std::vector<NodeId>{0, 2, 3, 5});  // clean
  ta.observe_path(1, std::vector<NodeId>{0, 1, 3, 5});  // first only
  ta.observe_path(1, std::vector<NodeId>{0, 2, 4, 5});  // last only
  EXPECT_DOUBLE_EQ(ta.end_to_end_rate(), 0.25);
  EXPECT_EQ(ta.first_hop_compromised(), 2u);
  EXPECT_EQ(ta.last_hop_compromised(), 2u);
}
