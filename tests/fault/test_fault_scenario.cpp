// End-to-end fault-mode soak: a full scenario with every fault knob on must
// complete connections, drive the keepalive layer, keep payments conserved,
// and stay bitwise deterministic in the seed.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "harness/scenario.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ScenarioConfig soak_config(std::uint64_t seed = 7) {
  ScenarioConfig cfg = paper_default_config(seed);
  cfg.overlay.node_count = 20;
  cfg.overlay.degree = 4;
  cfg.pair_count = 6;
  cfg.connections_per_pair = 3;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(45.0);

  cfg.fault.link_loss = 0.05;
  cfg.fault.delay_jitter = 0.3;
  cfg.fault.crash_rate_per_hour = 6.0;
  cfg.fault.crash_recovery_mean = sim::minutes(10.0);
  cfg.fault.probe_false_negative = 0.1;

  cfg.async_setup.attempt_deadline = sim::minutes(3.0);
  cfg.data_phase.duration = 90.0;
  cfg.data_phase.keepalive_interval = 10.0;
  return cfg;
}

}  // namespace

TEST(FaultScenario, SoakCompletesUnderCombinedFaults) {
  const ScenarioResult r = ScenarioRunner(soak_config()).run();

  // The system must make progress despite loss + crashes + flaky probes.
  EXPECT_GT(r.connections_completed, 0u);
  EXPECT_GT(r.setup_attempts, r.connections_completed)
      << "5% loss over multi-leg setups must force at least some retries";

  // The injector must actually have been exercised.
  EXPECT_GT(r.crashes, 0u);
  EXPECT_GT(r.messages_dropped, 0u);
  EXPECT_GT(r.probe_false_negatives, 0u);

  // Data phase ran and its delivery accounting is sane.
  EXPECT_GT(r.keepalives_sent, 0u);
  EXPECT_LE(r.keepalives_delivered, r.keepalives_sent);
  EXPECT_GE(r.delivery_ratio(), 0.0);
  EXPECT_LE(r.delivery_ratio(), 1.0);

  // Keepalive timers fired, and every *attributable* failure (a path node
  // ground-truth down at detection time) produced a lag sample. Loss-induced
  // timeouts have no downed node to attribute, so samples <= detections.
  EXPECT_GT(r.failures_detected, 0u);
  EXPECT_LE(r.time_to_detect.count(),
            static_cast<std::size_t>(r.failures_detected));
  if (r.time_to_detect.count() > 0) {
    EXPECT_GT(r.time_to_detect.mean(), 0.0);
  }

  // Economic invariants hold even when connections die mid-flight.
  EXPECT_TRUE(r.payment_conserved);
}

TEST(FaultScenario, PermanentCrashesStillDetectedAndReformed) {
  // crash_recovery_mean = 0: crashed nodes are gone for good. The keepalive
  // layer must still *detect* the dead paths and re-form around the
  // survivors, and the economics must survive the shrinking population.
  ScenarioConfig cfg = soak_config(13);
  cfg.fault.link_loss = 0.0;  // isolate the crash plane
  cfg.fault.probe_false_negative = 0.0;
  cfg.fault.crash_rate_per_hour = 3.0;
  cfg.fault.crash_recovery_mean = 0.0;
  const ScenarioResult r = ScenarioRunner(cfg).run();

  EXPECT_GT(r.crashes, 0u);
  EXPECT_GT(r.connections_completed, 0u);
  EXPECT_GT(r.failures_detected, 0u)
      << "permanently dead path members must trip keepalive timers";
  EXPECT_TRUE(r.payment_conserved);
}

TEST(FaultScenario, DeterministicInSeed) {
  const ScenarioResult a = ScenarioRunner(soak_config(11)).run();
  const ScenarioResult b = ScenarioRunner(soak_config(11)).run();

  EXPECT_EQ(a.connections_completed, b.connections_completed);
  EXPECT_EQ(a.connections_failed, b.connections_failed);
  EXPECT_EQ(a.setup_attempts, b.setup_attempts);
  EXPECT_EQ(a.setup_ack_timeouts, b.setup_ack_timeouts);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.keepalives_sent, b.keepalives_sent);
  EXPECT_EQ(a.keepalives_delivered, b.keepalives_delivered);
  EXPECT_EQ(a.failures_detected, b.failures_detected);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.setup_time.mean()),
            std::bit_cast<std::uint64_t>(b.setup_time.mean()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.time_to_detect.mean()),
            std::bit_cast<std::uint64_t>(b.time_to_detect.mean()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.good_payoff.mean()),
            std::bit_cast<std::uint64_t>(b.good_payoff.mean()));
}

TEST(FaultScenario, DifferentSeedsDiverge) {
  const ScenarioResult a = ScenarioRunner(soak_config(1)).run();
  const ScenarioResult b = ScenarioRunner(soak_config(2)).run();
  // A frozen fault stream would make these identical; any live knob makes
  // collision across seeds effectively impossible.
  EXPECT_NE(a.messages_dropped, b.messages_dropped);
}
