// FaultInjector unit behaviour: the all-off config injects nothing, streams
// are deterministic, partitions cut exactly across the bisection, crashes
// are silent to observers but visible to ground truth, and probe false
// negatives degrade observations without touching liveness.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "net/overlay.hpp"
#include "sim/simulator.hpp"

using namespace p2panon;
using namespace p2panon::fault;
using net::NodeId;

namespace {

net::OverlayConfig stable_overlay(std::size_t n = 20) {
  net::OverlayConfig cfg;
  cfg.node_count = n;
  cfg.degree = 4;
  cfg.churn.join_interarrival_mean = sim::minutes(0.2);
  cfg.churn.session_min = sim::hours(90.0);
  cfg.churn.session_median = sim::hours(100.0);
  cfg.churn.session_max = sim::hours(200.0);
  cfg.churn.departure_probability = 0.0;
  return cfg;
}

}  // namespace

TEST(FaultConfig, DefaultIsAllOff) {
  const FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  FaultConfig loss = cfg;
  loss.link_loss = 0.01;
  EXPECT_TRUE(loss.enabled());
  FaultConfig part = cfg;
  part.partitions.push_back({10.0, 20.0});
  EXPECT_TRUE(part.enabled());
}

TEST(FaultInjector, AllOffInjectsNothing) {
  sim::Simulator s;
  net::Overlay o(stable_overlay(), s, sim::rng::Stream(1).child("o"));
  FaultInjector f(FaultConfig{}, o, sim::rng::Stream(1).child("f"));
  o.start();
  f.start();
  s.run_until(sim::hours(12.0));
  EXPECT_EQ(f.crashes(), 0u);
  for (NodeId a = 0; a < o.size(); ++a) {
    for (NodeId b = 0; b < o.size(); ++b) {
      if (a == b) continue;
      EXPECT_FALSE(f.drop_message(a, b));
      EXPECT_DOUBLE_EQ(f.extra_delay(a, b), 0.0);
      EXPECT_FALSE(f.partitioned(a, b));
      if (o.is_online(b)) {
        EXPECT_TRUE(f.probe_observation(a, b));
      }
    }
  }
  EXPECT_EQ(f.messages_dropped(), 0u);
  EXPECT_EQ(f.probe_false_negatives(), 0u);
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  auto run = [] {
    sim::Simulator s;
    net::Overlay o(stable_overlay(), s, sim::rng::Stream(2).child("o"));
    FaultConfig cfg;
    cfg.link_loss = 0.3;
    cfg.delay_jitter = 0.5;
    cfg.crash_rate_per_hour = 2.0;
    FaultInjector f(cfg, o, sim::rng::Stream(2).child("f"));
    o.start();
    f.start();
    s.run_until(sim::hours(6.0));
    std::vector<bool> drops;
    std::vector<double> delays;
    for (int i = 0; i < 200; ++i) {
      drops.push_back(f.drop_message(0, 1));
      delays.push_back(f.extra_delay(0, 1));
    }
    return std::make_tuple(f.crashes(), drops, delays);
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjector, PartitionCutsOnlyCrossSideMessages) {
  sim::Simulator s;
  net::Overlay o(stable_overlay(20), s, sim::rng::Stream(3).child("o"));
  FaultConfig cfg;
  cfg.partitions.push_back({sim::minutes(10.0), sim::minutes(20.0)});
  FaultInjector f(cfg, o, sim::rng::Stream(3).child("f"));
  o.start();

  s.run_until(sim::minutes(5.0));
  EXPECT_FALSE(f.partitioned(0, 19)) << "window not yet open";

  s.run_until(sim::minutes(15.0));  // inside the window; bisection at 10
  EXPECT_TRUE(f.partitioned(0, 19));
  EXPECT_TRUE(f.partitioned(19, 0));
  EXPECT_FALSE(f.partitioned(0, 9)) << "same side of the bisection";
  EXPECT_FALSE(f.partitioned(10, 19)) << "same side of the bisection";
  EXPECT_TRUE(f.drop_message(0, 19)) << "cross-partition legs always drop";
  EXPECT_FALSE(f.drop_message(0, 9));
  EXPECT_FALSE(f.probe_observation(0, 19)) << "probes cannot cross the partition";

  s.run_until(sim::minutes(25.0));
  EXPECT_FALSE(f.partitioned(0, 19)) << "window closed; partition healed";
}

TEST(FaultInjector, CrashesAreSilentAndRecoveriesAnnounced) {
  sim::Simulator s;
  net::Overlay o(stable_overlay(), s, sim::rng::Stream(4).child("o"));
  FaultConfig cfg;
  cfg.crash_rate_per_hour = 4.0;
  cfg.crash_recovery_mean = sim::minutes(10.0);
  FaultInjector f(cfg, o, sim::rng::Stream(4).child("f"));

  o.start();
  s.run_until(sim::hours(2.0));  // everyone joined; join notifications done

  std::uint64_t offline_notifications = 0;
  std::uint64_t online_notifications = 0;
  o.add_churn_observer([&](NodeId, bool online, sim::Time) {
    (online ? online_notifications : offline_notifications) += 1;
  });
  f.start();
  s.run_until(s.now() + sim::hours(12.0));

  EXPECT_GT(f.crashes(), 0u) << "4/h over 12 h across 20 nodes must crash someone";
  // This world has no graceful churn (sessions are ~100 h), so every
  // offline event would have to come from a crash — and crashes are silent.
  EXPECT_EQ(offline_notifications, 0u) << "silent crashes must not notify observers";
  EXPECT_GT(online_notifications, 0u) << "recoveries are announced joins";
  // Ground truth saw the downtime even though observers did not.
  bool some_recorded_leave = false;
  for (NodeId v = 0; v < o.size(); ++v) {
    if (f.last_crash_time(v) >= 0.0) {
      EXPECT_GE(o.node(v).tracker.last_leave(), 0.0);
      some_recorded_leave = true;
    }
  }
  EXPECT_TRUE(some_recorded_leave);
}

TEST(FaultInjector, CrashWithoutRecoveryIsPermanent) {
  // crash_recovery_mean = 0 means "crashed for good": no recovery event is
  // ever scheduled, the node never rejoins, and last_recovery_time stays -1.
  sim::Simulator s;
  net::Overlay o(stable_overlay(), s, sim::rng::Stream(6).child("o"));
  FaultConfig cfg;
  cfg.crash_rate_per_hour = 4.0;
  cfg.crash_recovery_mean = 0.0;
  FaultInjector f(cfg, o, sim::rng::Stream(6).child("f"));

  o.start();
  s.run_until(sim::hours(2.0));  // everyone joined

  std::uint64_t online_notifications = 0;
  o.add_churn_observer([&](NodeId, bool online, sim::Time) {
    if (online) ++online_notifications;
  });
  f.start();
  s.run_until(s.now() + sim::hours(12.0));

  EXPECT_GT(f.crashes(), 0u);
  EXPECT_EQ(online_notifications, 0u) << "a node crashed for good must never rejoin";
  bool some_crashed = false;
  for (NodeId v = 0; v < o.size(); ++v) {
    EXPECT_DOUBLE_EQ(f.last_recovery_time(v), -1.0);
    if (f.last_crash_time(v) >= 0.0) {
      some_crashed = true;
      EXPECT_FALSE(o.is_online(v)) << "node " << v << " recovered without a recovery path";
    }
  }
  EXPECT_TRUE(some_crashed);
}

TEST(FaultInjector, ProbeFalseNegativesSuppressObservations) {
  sim::Simulator s;
  net::Overlay o(stable_overlay(), s, sim::rng::Stream(5).child("o"));
  FaultConfig cfg;
  cfg.probe_false_negative = 1.0;
  FaultInjector f(cfg, o, sim::rng::Stream(5).child("f"));
  o.start();
  s.run_until(sim::hours(1.0));
  for (NodeId b = 0; b < o.size(); ++b) {
    if (!o.is_online(b)) continue;
    EXPECT_FALSE(f.probe_observation(0, b)) << "pfn=1 must suppress every observation";
  }
  EXPECT_GT(f.probe_false_negatives(), 0u);
}
