#include "sim/event_callback.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

using p2panon::sim::EventCallback;

TEST(EventCallback, DefaultIsEmpty) {
  EventCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.uses_heap());
}

TEST(EventCallback, SmallCaptureStaysInline) {
  int hits = 0;
  EventCallback cb([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.uses_heap());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(EventCallback, CaptureAtInlineLimitStaysInline) {
  // A capture filling the budget exactly (payload + one reference).
  struct Exact {
    char bytes[EventCallback::kInlineSize - sizeof(void*)] = {};
  } exact;
  exact.bytes[0] = 3;
  int sum = 0;
  EventCallback cb([exact, &sum] { sum += exact.bytes[0]; });
  EXPECT_FALSE(cb.uses_heap());
  cb();
  EXPECT_EQ(sum, 3);
}

TEST(EventCallback, OversizedCaptureFallsBackToHeap) {
  struct Big {
    char bytes[EventCallback::kInlineSize + 1] = {};
  } big;
  big.bytes[EventCallback::kInlineSize] = 5;
  int seen = 0;
  EventCallback cb([big, &seen] { seen = big.bytes[EventCallback::kInlineSize]; });
  EXPECT_TRUE(cb.uses_heap());
  cb();
  EXPECT_EQ(seen, 5);
}

TEST(EventCallback, MoveTransfersOwnership) {
  int hits = 0;
  EventCallback a([&hits] { ++hits; });
  EventCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  EventCallback c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventCallback, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(11);
  int seen = 0;
  EventCallback cb([owned = std::move(owned), &seen] { seen = *owned; });
  EXPECT_FALSE(cb.uses_heap());  // unique_ptr fits inline
  cb();
  EXPECT_EQ(seen, 11);
}

TEST(EventCallback, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    EventCallback cb([token = std::move(token)] { (void)token; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(EventCallback, ResetReleasesCaptureAndEmpties) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  EventCallback cb([token = std::move(token)] { (void)token; });
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(EventCallback, HeapCaptureDestroyedOnMoveAssignOver) {
  struct Big {
    std::shared_ptr<int> token;
    char pad[EventCallback::kInlineSize] = {};
  };
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  EventCallback cb(
      [big = Big{std::move(token), {}}] { (void)big; });
  EXPECT_TRUE(cb.uses_heap());
  cb = EventCallback([] {});
  EXPECT_TRUE(watch.expired());
}
