// ShardedSimulator engine-level contracts (see src/sim/sharded.hpp):
// K = 1 degenerates to the plain serial Simulator event for event; cross-
// shard posts arrive only at window boundaries at max(at, boundary); empty
// windows are fast-forwarded; and for a fixed {K, window} the execution is
// identical across thread-pool sizes including the pool == nullptr path.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

using namespace p2panon;
using namespace p2panon::sim;

namespace {

struct Fired {
  int tag;
  Time at;
  bool operator==(const Fired&) const = default;
};

/// A small but adversarial single-shard workload: same-time ties, an event
/// scheduling more events, and a cancelled timer. `sched` abstracts over the
/// plain Simulator and shard 0 of a ShardedSimulator.
template <typename Schedule, typename Cancel>
void seed_workload(std::vector<Fired>& log, Schedule sched, Cancel cancel) {
  sched(5.0, [&log] { log.push_back({1, 5.0}); });
  sched(5.0, [&log] { log.push_back({2, 5.0}); });  // same-time tie
  sched(12.5, [&log, sched] {
    log.push_back({3, 12.5});
    sched(12.5, [&log] { log.push_back({4, 12.5}); });  // zero-delay follow-up
    sched(40.0, [&log] { log.push_back({5, 40.0}); });
  });
  const EventId doomed = sched(33.0, [&log] { log.push_back({-1, 33.0}); });
  sched(20.0, [&log, cancel, doomed] {
    log.push_back({6, 20.0});
    cancel(doomed);
  });
}

}  // namespace

TEST(ShardedSimulator, SingleShardMatchesPlainSimulatorEventForEvent) {
  std::vector<Fired> plain_log;
  Simulator plain;
  seed_workload(
      plain_log, [&plain](Time at, auto fn) { return plain.schedule_at(at, std::move(fn)); },
      [&plain](EventId id) { plain.cancel(id); });
  plain.run_until(100.0);

  // A window much smaller than the event spacing forces many chunked
  // run_until calls — the chunking must not reorder or drop anything.
  std::vector<Fired> sharded_log;
  ShardedSimulator sharded(1, 3.0, nullptr);
  seed_workload(
      sharded_log,
      [&sharded](Time at, auto fn) { return sharded.shard(0).schedule_at(at, std::move(fn)); },
      [&sharded](EventId id) { sharded.shard(0).cancel(id); });
  sharded.run_until(100.0);

  EXPECT_EQ(plain_log, sharded_log);
  EXPECT_EQ(plain.now(), sharded.shard(0).now());
  EXPECT_EQ(sharded.stats().cross_shard_messages, 0u);
  // Engine counters match too: chunked driving fires the same events.
  EXPECT_EQ(plain.queue_stats().fired, sharded.aggregate_queue_stats().fired);
  EXPECT_EQ(plain.queue_stats().cancelled,
            sharded.aggregate_queue_stats().cancelled);
}

TEST(ShardedSimulator, CrossShardPostDeliversAtWindowBoundary) {
  ShardedSimulator engine(2, 10.0, nullptr);
  std::vector<Time> deliveries;

  engine.shard(0).schedule_at(1.0, [&engine, &deliveries] {
    // Send time inside the current window: arrives exactly at the boundary,
    // never mid-window (the receiver must not see mid-window effects).
    engine.post(0, 1, 3.0, [&engine, &deliveries] { deliveries.push_back(engine.shard(1).now()); });
    // Target time beyond the boundary: arrives at its own time.
    engine.post(0, 1, 17.0, [&engine, &deliveries] { deliveries.push_back(engine.shard(1).now()); });
  });
  engine.run_until(30.0);

  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 10.0);  // max(3, boundary 10)
  EXPECT_EQ(deliveries[1], 17.0);  // max(17, boundary 10)
  EXPECT_EQ(engine.stats().cross_shard_messages, 2u);
}

TEST(ShardedSimulator, LocalPostBypassesMailbox) {
  ShardedSimulator engine(2, 10.0, nullptr);
  std::vector<Time> deliveries;
  engine.shard(0).schedule_at(1.0, [&engine, &deliveries] {
    engine.post(0, 0, 3.0, [&engine, &deliveries] { deliveries.push_back(engine.shard(0).now()); });
  });
  engine.run_until(30.0);

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 3.0);  // mid-window: local posts are plain schedules
  EXPECT_EQ(engine.stats().cross_shard_messages, 0u);
}

TEST(ShardedSimulator, PostBeforeRunIsDeliveredAtItsTime) {
  // Seeding posts issued before the first run_until (no window is active yet)
  // are flushed up-front, so they land at their requested time.
  ShardedSimulator engine(4, 10.0, nullptr);
  std::vector<std::pair<std::uint32_t, Time>> deliveries;
  for (std::uint32_t dst = 0; dst < 4; ++dst) {
    engine.post(0, dst, 2.5 + dst, [&engine, &deliveries, dst] {
      deliveries.emplace_back(dst, engine.shard(dst).now());
    });
  }
  engine.run_until(30.0);

  ASSERT_EQ(deliveries.size(), 4u);
  for (std::uint32_t dst = 0; dst < 4; ++dst) {
    EXPECT_EQ(deliveries[dst].first, dst);
    EXPECT_EQ(deliveries[dst].second, 2.5 + dst);
  }
}

TEST(ShardedSimulator, FastForwardsEmptyWindowsAndCountsBarriers) {
  ShardedSimulator engine(2, 10.0, nullptr);
  std::vector<Time> barrier_times;
  engine.add_barrier_hook([&barrier_times](Time boundary) { barrier_times.push_back(boundary); });

  bool fired = false;
  engine.shard(1).schedule_at(95.0, [&fired] { fired = true; });
  engine.run_until(200.0);

  EXPECT_TRUE(fired);
  // One window covers [90, 100): the 9 empty windows before it and the 10
  // after are skipped, not barriered through.
  EXPECT_EQ(engine.stats().window_barriers, 1u);
  ASSERT_EQ(barrier_times.size(), 1u);
  EXPECT_EQ(barrier_times[0], 100.0);
  EXPECT_EQ(engine.shard(0).now(), 200.0);
  EXPECT_EQ(engine.shard(1).now(), 200.0);
}

TEST(ShardedSimulator, CrossShardChainCountsEveryHandOff) {
  // Ping-pong between two shards: each delivery re-posts to the peer until
  // the horizon. Every hand-off crosses the mailbox exactly once.
  ShardedSimulator engine(2, 10.0, nullptr);
  std::uint64_t hops = 0;
  // EventCallback's inline buffer is small, so recurse through a function
  // pointer-style self-reference held outside the callback.
  struct Pinger {
    ShardedSimulator* engine;
    std::uint64_t* hops;
    void bounce(std::uint32_t me) {
      ++*hops;
      const std::uint32_t peer = 1 - me;
      if (engine->shard(me).now() < 95.0) {
        engine->post(me, peer, engine->shard(me).now(),
                     [this, peer] { bounce(peer); });
      }
    }
  } pinger{&engine, &hops};
  engine.post(0, 1, 0.0, [&pinger] { pinger.bounce(1); });
  engine.run_until(100.0);

  // Seed delivery at t=0... then one delivery per boundary 10..100.
  EXPECT_GT(hops, 5u);
  EXPECT_EQ(engine.stats().cross_shard_messages, hops);
}

TEST(ShardedSimulator, DeterministicAcrossPoolSizes) {
  // Fixed {K, window}: per-shard execution logs must be identical whether
  // windows run serially (pool == nullptr) or on pools of any size. Each
  // shard logs only into its own vector, so parallel windows stay race-free.
  constexpr std::uint32_t kShards = 4;
  const auto run_logs = [](parallel::ThreadPool* pool) {
    ShardedSimulator engine(kShards, 5.0, pool);
    auto logs = std::vector<std::vector<Fired>>(kShards);
    struct Fanout {
      ShardedSimulator* engine;
      std::vector<std::vector<Fired>>* logs;
      void tick(std::uint32_t shard, int depth) {
        (*logs)[shard].push_back({depth, engine->shard(shard).now()});
        if (depth >= 6) return;
        const Time now = engine->shard(shard).now();
        // One local follow-up and one cross-shard hand-off per tick.
        engine->shard(shard).schedule_at(now + 1.25, [this, shard, depth] {
          (*logs)[shard].push_back({100 + depth, engine->shard(shard).now()});
        });
        const std::uint32_t peer = (shard + 1 + static_cast<std::uint32_t>(depth)) % kShards;
        engine->post(shard, peer, now + 2.0, [this, peer, depth] { tick(peer, depth + 1); });
      }
    } fanout{&engine, &logs};
    for (std::uint32_t s = 0; s < kShards; ++s) {
      engine.post(s, s, 0.5 + s, [&fanout, s] { fanout.tick(s, 0); });
    }
    engine.run_until(400.0);
    return std::make_pair(std::move(logs), engine.stats().cross_shard_messages);
  };

  const auto [serial_logs, serial_msgs] = run_logs(nullptr);
  EXPECT_GT(serial_msgs, 0u);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("pool size " + std::to_string(threads));
    parallel::ThreadPool pool(threads);
    const auto [logs, msgs] = run_logs(&pool);
    EXPECT_EQ(logs, serial_logs);
    EXPECT_EQ(msgs, serial_msgs);
  }
}
