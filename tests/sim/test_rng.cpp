#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace rng = p2panon::sim::rng;

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng::splitmix64(s1), rng::splitmix64(s2));
  }
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(rng::splitmix64(s1), rng::splitmix64(s2));
}

TEST(HashTag, StableAndDiscriminating) {
  EXPECT_EQ(rng::hash_tag("churn"), rng::hash_tag("churn"));
  EXPECT_NE(rng::hash_tag("churn"), rng::hash_tag("links"));
  EXPECT_NE(rng::hash_tag(""), rng::hash_tag("a"));
}

TEST(Stream, SameSeedSameSequence) {
  rng::Stream a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Stream, DifferentSeedsDifferentSequences) {
  rng::Stream a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Stream, ChildStreamsIndependentOfParentConsumption) {
  rng::Stream parent(99);
  rng::Stream c1 = parent.child("x", 1);
  // Consuming the parent must not change what a child derived later yields.
  for (int i = 0; i < 50; ++i) parent.next_u64();
  rng::Stream c2 = parent.child("x", 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Stream, ChildrenWithDistinctTagsDiffer) {
  rng::Stream parent(99);
  rng::Stream a = parent.child("alpha"), b = parent.child("beta");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Stream, ChildrenWithDistinctIdsDiffer) {
  rng::Stream parent(99);
  rng::Stream a = parent.child("t", 0), b = parent.child("t", 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Stream, ChainedDerivationDoesNotCancel) {
  // Regression: with XOR-only key derivation, child("a", i).child("b", i)
  // collapsed to the same stream for every i (the id term cancelled),
  // which made e.g. all Crowds termination coin sequences identical.
  rng::Stream root(3);
  auto g1 = root.child("a", 7).child("b", 7);
  auto g2 = root.child("a", 8).child("b", 8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (g1.next_u64() == g2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Stream, FirstDrawOfChildStreamsUnbiased) {
  // Regression companion: the first double of fresh child streams must be
  // uniform across ids, not clustered.
  rng::Stream root(3);
  int below = 0;
  const int n = 20000;
  for (int c = 0; c < n; ++c) {
    auto s = root.child("geo", c).child("termination", c);
    if (s.next_double() < 0.75) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.75, 0.02);
}

TEST(Stream, GrandchildrenDeterministic) {
  rng::Stream p(5);
  auto g1 = p.child("a", 3).child("b", 9);
  auto g2 = rng::Stream(5).child("a", 3).child("b", 9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(g1.next_u64(), g2.next_u64());
}

TEST(Stream, NextDoubleInUnitInterval) {
  rng::Stream s(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = s.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Stream, NextDoubleMeanNearHalf) {
  rng::Stream s(321);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += s.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Stream, UniformRespectsBounds) {
  rng::Stream s(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = s.uniform(-3.0, 7.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Stream, BelowIsUnbiasedAcrossSmallRange) {
  rng::Stream s(77);
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[s.below(6)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [v, c] : counts) {
    EXPECT_LT(v, 6u);
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 6.0, 0.01);
  }
}

TEST(Stream, BelowOneAlwaysZero) {
  rng::Stream s(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.below(1), 0u);
}

TEST(Stream, UniformIntInclusiveBounds) {
  rng::Stream s(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = s.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Stream, BernoulliFrequencyMatchesP) {
  rng::Stream s(13);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += s.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Stream, BernoulliDegenerateCases) {
  rng::Stream s(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.bernoulli(0.0));
    EXPECT_TRUE(s.bernoulli(1.0));
  }
}

TEST(Stream, ExponentialMeanMatchesRate) {
  rng::Stream s(15);
  const double rate = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = s.exponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Stream, ParetoRespectsScale) {
  rng::Stream s(16);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.pareto(1.5, 2.0), 2.0);
}

TEST(Stream, ParetoMedianMatchesShapeFormula) {
  const double xm = 5.0, median = 60.0;
  const double alpha = rng::pareto_shape_for_median(xm, median);
  rng::Stream s(17);
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(s.pareto(alpha, xm));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], median, median * 0.05);
}

TEST(Stream, BoundedParetoStaysInBounds) {
  rng::Stream s(18);
  for (int i = 0; i < 20000; ++i) {
    const double x = s.bounded_pareto(1.2, 5.0, 100.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Stream, BoundedParetoSkewsLow) {
  // Pareto mass concentrates near the lower bound: the median must be much
  // closer to lo than to hi.
  rng::Stream s(19);
  std::vector<double> xs;
  const int n = 50001;
  for (int i = 0; i < n; ++i) xs.push_back(s.bounded_pareto(1.0, 1.0, 1000.0));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_LT(xs[n / 2], 10.0);
}

TEST(Stream, NormalMeanAndStddev) {
  rng::Stream s(20);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = s.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Stream, ShufflePreservesElements) {
  rng::Stream s(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  s.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stream, ShuffleActuallyPermutes) {
  rng::Stream s(22);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto orig = v;
  s.shuffle(v);
  EXPECT_NE(v, orig);  // probability ~1/50! of a false failure
}

TEST(Stream, SampleIndicesDistinctAndInRange) {
  rng::Stream s(23);
  for (int trial = 0; trial < 100; ++trial) {
    auto idx = s.sample_indices(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    std::set<std::size_t> uniq(idx.begin(), idx.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (auto i : idx) EXPECT_LT(i, 20u);
  }
}

TEST(Stream, SampleIndicesFullRange) {
  rng::Stream s(24);
  auto idx = s.sample_indices(5, 5);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Stream, SampleIndicesZero) {
  rng::Stream s(25);
  EXPECT_TRUE(s.sample_indices(5, 0).empty());
}

TEST(ParetoShape, MedianFormulaInverts) {
  // alpha derived from (xm, median) must map the analytic median back.
  const double xm = 300.0;  // 5 min in seconds
  const double median = 3600.0;
  const double alpha = rng::pareto_shape_for_median(xm, median);
  EXPECT_NEAR(xm * std::pow(2.0, 1.0 / alpha), median, 1e-6);
}

TEST(BoundedParetoShape, AnalyticMedianMatchesEmpirical) {
  const double lo = 300.0, hi = 86400.0, target = 3600.0;
  const double alpha = rng::bounded_pareto_shape_for_median(lo, hi, target);
  EXPECT_NEAR(rng::bounded_pareto_median(alpha, lo, hi), target, 1e-6);

  rng::Stream s(26);
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(s.bounded_pareto(alpha, lo, hi));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], target, target * 0.05);
}

TEST(BoundedParetoShape, MedianDecreasesWithShape) {
  const double lo = 1.0, hi = 1000.0;
  EXPECT_GT(rng::bounded_pareto_median(0.5, lo, hi), rng::bounded_pareto_median(2.0, lo, hi));
}

TEST(Zipf, ZeroExponentIsUniform) {
  rng::Stream s(30);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[s.zipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Zipf, RankProbabilitiesMatchLaw) {
  rng::Stream s(31);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[s.zipf(4, 1.0)];
  // Weights 1, 1/2, 1/3, 1/4; normaliser 25/12.
  const double z = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, (1.0 / (k + 1)) / z, 0.01) << "rank " << k;
  }
}

TEST(Zipf, HigherExponentMoreSkew) {
  rng::Stream s(32);
  int top_mild = 0, top_heavy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.zipf(10, 0.5) == 0) ++top_mild;
    if (s.zipf(10, 2.0) == 0) ++top_heavy;
  }
  EXPECT_GT(top_heavy, top_mild);
}

TEST(Zipf, SingleElementAlwaysZero) {
  rng::Stream s(33);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.zipf(1, 1.5), 0u);
}

TEST(BoundedParetoShape, LongMedianAchievableWithWideBounds) {
  // Regression: medians above sqrt(lo*hi) are unreachable (the bisection
  // degenerated silently); with adequate bounds they must solve exactly.
  const double lo = 300.0;                  // 5 min
  const double target = 240.0 * 60.0;       // 240 min
  const double hi = 10.0 * target * target / lo;
  const double alpha = rng::bounded_pareto_shape_for_median(lo, hi, target);
  EXPECT_GT(alpha, 1e-4);
  EXPECT_NEAR(rng::bounded_pareto_median(alpha, lo, hi), target, 1.0);
}

// Property sweep: below(n) never returns >= n across magnitudes.
class BelowRange : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BelowRange, NeverOutOfRange) {
  rng::Stream s(GetParam() * 31 + 7);
  const std::uint64_t n = GetParam();
  for (int i = 0; i < 5000; ++i) EXPECT_LT(s.below(n), n);
}

INSTANTIATE_TEST_SUITE_P(Ranges, BelowRange,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 7ULL, 64ULL, 1000ULL, 1ULL << 32,
                                           (1ULL << 63) + 12345ULL));
