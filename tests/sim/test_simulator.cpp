#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/types.hpp"

using p2panon::sim::Simulator;
namespace sim = p2panon::sim;

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  double seen = -1;
  s.schedule_at(10.0, [&] { seen = s.now(); });
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(seen, 10.0);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  std::vector<double> times;
  s.schedule_at(5.0, [&] {
    s.schedule_in(2.5, [&] { times.push_back(s.now()); });
  });
  s.run_to_completion();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 7.5);
}

TEST(Simulator, EventsExecuteInOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  s.schedule_at(10.0, [&] { ++fired; });
  s.run_until(5.0);
  EXPECT_EQ(fired, 2);  // events at exactly the horizon run
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulator, SelfPerpetuatingEventsRespectHorizon) {
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    s.schedule_in(1.0, tick);
  };
  s.schedule_at(0.0, tick);
  s.run_until(10.5);
  EXPECT_EQ(count, 11);  // t = 0..10
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  auto id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(static_cast<double>(i), [] {});
  s.run_to_completion();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, EventSchedulingFromWithinEvent) {
  Simulator s;
  std::vector<double> times;
  s.schedule_at(1.0, [&] {
    times.push_back(s.now());
    s.schedule_at(1.0, [&] { times.push_back(s.now()); });  // same time, runs after
    s.schedule_in(0.0, [&] { times.push_back(s.now()); });
  });
  s.run_to_completion();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 1.0);
}

TEST(Simulator, ResetRestoresInitialState) {
  Simulator s;
  s.schedule_at(1.0, [] {});
  s.run_to_completion();
  s.schedule_at(5.0, [] {});
  s.reset();
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(SimTime, UnitHelpers) {
  EXPECT_DOUBLE_EQ(sim::minutes(1.0), 60.0);
  EXPECT_DOUBLE_EQ(sim::hours(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(sim::to_minutes(sim::minutes(42.0)), 42.0);
}
