#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

using p2panon::sim::EventQueue;
using p2panon::sim::kTimeInfinity;

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PopInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, MixedEqualAndDistinctTimes) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(20); });
  q.schedule(1.0, [&] { order.push_back(10); });
  q.schedule(2.0, [&] { order.push_back(21); });
  q.schedule(1.0, [&] { order.push_back(11); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21}));
}

TEST(EventQueue, NextTimeReflectsEarliestLive) {
  EventQueue q;
  auto id = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  auto id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  auto id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  auto id = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelMiddleOfThree) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  auto mid = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(mid));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PoppedCarriesTimeAndId) {
  EventQueue q;
  auto id = q.schedule(4.5, [] {});
  auto popped = q.pop();
  EXPECT_DOUBLE_EQ(popped.time, 4.5);
  EXPECT_EQ(popped.id, id);
  ASSERT_TRUE(popped.fn);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t state = 9;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double t = static_cast<double>(state % 1000);
    q.schedule(t, [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    auto e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

TEST(EventQueue, InterleavedCancelStress) {
  EventQueue q;
  std::vector<p2panon::sim::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i % 10), [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired + cancelled, 100);
  EXPECT_EQ(cancelled, 34);
}
