#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using p2panon::sim::EventQueue;
using p2panon::sim::kTimeInfinity;

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PopInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, MixedEqualAndDistinctTimes) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(20); });
  q.schedule(1.0, [&] { order.push_back(10); });
  q.schedule(2.0, [&] { order.push_back(21); });
  q.schedule(1.0, [&] { order.push_back(11); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21}));
}

TEST(EventQueue, NextTimeReflectsEarliestLive) {
  EventQueue q;
  auto id = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  auto id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  auto id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  auto id = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelMiddleOfThree) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  auto mid = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(mid));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PoppedCarriesTimeAndId) {
  EventQueue q;
  auto id = q.schedule(4.5, [] {});
  auto popped = q.pop();
  EXPECT_DOUBLE_EQ(popped.time, 4.5);
  EXPECT_EQ(popped.id, id);
  ASSERT_TRUE(popped.fn);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t state = 9;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double t = static_cast<double>(state % 1000);
    q.schedule(t, [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    auto e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

TEST(EventQueue, InterleavedCancelStress) {
  EventQueue q;
  std::vector<p2panon::sim::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i % 10), [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired + cancelled, 100);
  EXPECT_EQ(cancelled, 34);
}

// --- The exact cancellation semantics documented in event_queue.hpp.

TEST(EventQueueCancelSemantics, CancelInsideOwnCallbackReturnsFalse) {
  // Once pop() has handed an event out, it is spent — even while its own
  // callback is still on the stack (the "mid-pop() window").
  EventQueue q;
  p2panon::sim::EventId self = p2panon::sim::kInvalidEventId;
  bool cancel_result = true;
  self = q.schedule(1.0, [&] { cancel_result = q.cancel(self); });
  q.pop().fn();
  EXPECT_FALSE(cancel_result);
}

TEST(EventQueueCancelSemantics, CancelOtherFromCallbackPreventsIt) {
  EventQueue q;
  bool victim_fired = false;
  bool cancel_result = false;
  const auto victim = q.schedule(2.0, [&] { victim_fired = true; });
  q.schedule(1.0, [&] { cancel_result = q.cancel(victim); });
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(cancel_result);
  EXPECT_FALSE(victim_fired);
}

TEST(EventQueueCancelSemantics, ScheduleFromCallbackRuns) {
  EventQueue q;
  bool late_fired = false;
  q.schedule(1.0, [&] { q.schedule(2.0, [&] { late_fired = true; }); });
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(late_fired);
}

TEST(EventQueueCancelSemantics, StaleIdAfterSlotReuseReturnsFalse) {
  // A fired event's slot may be recycled by a later schedule(); the old id
  // must keep answering false and must never cancel the new occupant.
  EventQueue q;
  const auto old_id = q.schedule(1.0, [] {});
  q.pop();
  bool fired = false;
  const auto new_id = q.schedule(2.0, [&] { fired = true; });
  EXPECT_NE(old_id, new_id);  // generation distinguishes the reuse
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueueCancelSemantics, PreClearIdsStayDeadAfterClear) {
  EventQueue q;
  const auto id = q.schedule(1.0, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(id));
  bool fired = false;
  q.schedule(1.0, [&] { fired = true; });
  EXPECT_FALSE(q.cancel(id));  // still the pre-clear generation
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueueCancelSemantics, CancelledSlotReusedKeepsOrdering) {
  // Reusing a cancelled event's slot must not disturb (time, seq) order.
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const auto dead = q.schedule(1.0, [&] { order.push_back(-1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  EXPECT_TRUE(q.cancel(dead));
  q.schedule(1.0, [&] { order.push_back(3); });  // likely reuses dead's slot
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueStats, CountsScheduledCancelledFired) {
  EventQueue q;
  const auto a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.schedule(3.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // failed cancels are not counted
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(q.stats().scheduled, 3u);
  EXPECT_EQ(q.stats().cancelled, 1u);
  EXPECT_EQ(q.stats().fired, 2u);
  EXPECT_EQ(q.stats().callback_heap_allocs, 0u);
}

TEST(EventQueueStats, OversizedCaptureCountsAsHeapFallback) {
  EventQueue q;
  struct Big {
    char bytes[p2panon::sim::EventCallback::kInlineSize + 1] = {};
  } big;
  q.schedule(1.0, [big] { (void)big; });
  EXPECT_EQ(q.stats().callback_heap_allocs, 1u);
  q.pop().fn();
}

TEST(EventQueueStress, MillionEventScheduleCancelPop) {
  // ~1M events through interleaved schedule/cancel/pop with a pending set in
  // the thousands — the cancel-heavy fault-mode shape. With the old
  // O(pending) cancel this test is quadratic; with the slot map it is
  // effectively instant, so a ctest timeout doubles as a complexity guard.
  EventQueue q;
  constexpr int kEvents = 1'000'000;
  std::uint64_t rng = 42;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };
  std::vector<p2panon::sim::EventId> pending_ids;
  pending_ids.reserve(4096);
  double now = 0.0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  int scheduled = 0;
  while (scheduled < kEvents || !q.empty()) {
    const std::uint64_t r = next();
    const auto op = static_cast<int>(r % 4);
    if (op == 1 && !pending_ids.empty()) {
      // Cancel a pseudo-random previously issued id (may already be spent).
      if (q.cancel(pending_ids[r % pending_ids.size()])) ++cancelled;
    } else if (op >= 2 && scheduled < kEvents) {
      const double at = now + 1.0 + static_cast<double>(r % 1000);
      pending_ids.push_back(q.schedule(at, [&fired] { ++fired; }));
      ++scheduled;
    } else if (!q.empty()) {
      auto ev = q.pop();
      EXPECT_GE(ev.time, now);
      now = ev.time;
      ev.fn();
    }
    if (pending_ids.size() >= 4096) pending_ids.clear();
  }
  EXPECT_EQ(fired + cancelled, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(q.stats().scheduled, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(q.stats().fired, fired);
  EXPECT_EQ(q.stats().cancelled, cancelled);
  EXPECT_EQ(q.stats().callback_heap_allocs, 0u);
  EXPECT_GT(cancelled, static_cast<std::uint64_t>(kEvents) / 20);
}
