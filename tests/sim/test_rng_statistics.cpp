// Statistical quality checks for the RNG: chi-square uniformity, serial
// independence proxies, and cross-stream decorrelation. These guard the
// Monte-Carlo foundation every experiment stands on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace rng = p2panon::sim::rng;

namespace {

/// Chi-square statistic for observed counts vs a uniform expectation.
double chi_square_uniform(const std::vector<int>& counts, double expected) {
  double chi = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

}  // namespace

class RngStatistics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStatistics, ChiSquareUniformityOfBelow) {
  rng::Stream s(GetParam());
  constexpr int kBins = 32;
  constexpr int kDraws = 64000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[s.below(kBins)];
  // 31 degrees of freedom: critical value at p = 0.001 is ~61.1.
  EXPECT_LT(chi_square_uniform(counts, kDraws / static_cast<double>(kBins)), 61.1);
}

TEST_P(RngStatistics, ChiSquareUniformityOfDoubleBins) {
  rng::Stream s(GetParam() + 1000);
  constexpr int kBins = 20;
  constexpr int kDraws = 40000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(s.next_double() * kBins)];
  }
  // 19 dof, p = 0.001 critical ~43.8.
  EXPECT_LT(chi_square_uniform(counts, kDraws / static_cast<double>(kBins)), 43.8);
}

TEST_P(RngStatistics, SerialCorrelationNegligible) {
  rng::Stream s(GetParam() + 2000);
  constexpr int kDraws = 50000;
  double prev = s.next_double();
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_x2 = 0, sum_y2 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double cur = s.next_double();
    sum_x += prev;
    sum_y += cur;
    sum_xy += prev * cur;
    sum_x2 += prev * prev;
    sum_y2 += cur * cur;
    prev = cur;
  }
  const double n = kDraws;
  const double corr = (n * sum_xy - sum_x * sum_y) /
                      std::sqrt((n * sum_x2 - sum_x * sum_x) * (n * sum_y2 - sum_y * sum_y));
  EXPECT_LT(std::abs(corr), 0.02);
}

TEST_P(RngStatistics, SiblingStreamsUncorrelated) {
  rng::Stream parent(GetParam() + 3000);
  auto a = parent.child("left");
  auto b = parent.child("right");
  constexpr int kDraws = 50000;
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_x2 = 0, sum_y2 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = a.next_double();
    const double y = b.next_double();
    sum_x += x;
    sum_y += y;
    sum_xy += x * y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double n = kDraws;
  const double corr = (n * sum_xy - sum_x * sum_y) /
                      std::sqrt((n * sum_x2 - sum_x * sum_x) * (n * sum_y2 - sum_y * sum_y));
  EXPECT_LT(std::abs(corr), 0.02);
}

TEST_P(RngStatistics, BitBalance) {
  // Each of the 64 output bits should be set ~half the time.
  rng::Stream s(GetParam() + 4000);
  constexpr int kDraws = 20000;
  std::array<int, 64> ones{};
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = s.next_u64();
    for (int b = 0; b < 64; ++b) {
      if ((x >> b) & 1ULL) ++ones[b];
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[b]) / kDraws, 0.5, 0.02) << "bit " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngStatistics, ::testing::Values(1, 42, 31337));
