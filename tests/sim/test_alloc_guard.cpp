// Allocation guard for the event engine: once the queue's backing storage
// has reached steady-state capacity, schedule/cancel/pop must not touch the
// heap at all — EventCallback keeps captures inline and the slot map recycles
// its records. The guard replaces the global allocation functions with
// counting wrappers (binary-wide, but only the bracketed window is counted)
// and asserts the count stays zero through a model-shaped workload.
#include "sim/event_queue.hpp"
#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t n) {
  note_allocation();
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned(std::size_t n, std::size_t align) {
  note_allocation();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return checked_malloc(n); }
void* operator new[](std::size_t n) { return checked_malloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using p2panon::sim::EventQueue;

// A capture the size of the model layers' largest scheduled lambda (leg
// delivery: this + shared_ptr + ids), comfortably inside the inline budget.
struct ModelCapture {
  void* self = nullptr;
  void* control_a = nullptr;
  void* control_b = nullptr;
  std::uint64_t tid = 0;
  std::uint32_t attempt = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t kind = 0;
};
static_assert(sizeof(ModelCapture) <= p2panon::sim::EventCallback::kInlineSize);

TEST(EventQueueAllocGuard, SteadyStateSchedulesWithoutAllocating) {
  EventQueue q;
  ModelCapture capture;
  constexpr int kPending = 2048;
  std::uint64_t fired = 0;

  // The fault-mode steady state — schedule a timer, cancel the previous one,
  // pop due events. Deterministic, so two runs trace identical storage-growth
  // profiles: the physical heap length (live + not-yet-surfaced stale entries)
  // and slot count peak at the same values each time.
  const auto run_workload = [&q, &capture, &fired] {
    double now = 0.0;
    p2panon::sim::EventId last = p2panon::sim::kInvalidEventId;
    for (int round = 0; round < 50'000; ++round) {
      const auto id = q.schedule(now + 5.0 + (round % 97), [capture, &fired] {
        ++fired;
        (void)capture;
      });
      if (round % 2 == 1) q.cancel(last);
      last = id;
      if (q.size() >= kPending / 2) {
        auto ev = q.pop();
        now = ev.time;
        ev.fn();
      }
    }
    while (!q.empty()) {
      auto ev = q.pop();
      now = ev.time;
      ev.fn();
    }
  };

  // Warm-up pass: grows the heap vector and the slot map to the exact peak
  // the counted pass will need. Capacity is retained across clear-less reuse.
  run_workload();

  // Counted pass: same workload, zero allocations allowed. No gtest
  // assertions inside the window (they allocate).
  g_allocations.store(0);
  g_counting.store(true);
  run_workload();
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state schedule/cancel/pop performed heap allocations";
  EXPECT_EQ(q.stats().callback_heap_allocs, 0u);
  EXPECT_GT(fired, 0u);
}

// The same guarantee for the windowed sharded drive: after warm-up, per-shard
// queues, outboxes, and mailbox flushes all run on retained capacity — zero
// heap traffic per shard per window. Serial shard loop (pool == nullptr):
// ThreadPool::submit wraps tasks in std::function and is the one documented
// O(K)-per-window allocation site, so it is exactly what this guard excludes.
TEST(ShardedAllocGuard, SteadyStateWindowedRunDoesNotAllocate) {
  constexpr std::uint32_t kShards = 4;
  p2panon::sim::ShardedSimulator engine(kShards, 10.0, nullptr);

  // One hopping chain per shard. Each tick arms a long timer and cancels it
  // shortly after (the cancel-heavy shape), then hands the chain to the next
  // shard through the mailbox — constant event population, constant
  // cross-shard rate, so warm-up reaches every steady-state capacity peak.
  struct Ticker {
    p2panon::sim::ShardedSimulator* engine;
    std::uint64_t fired = 0;
    void tick(std::uint32_t shard) {
      ++fired;
      const double now = engine->shard(shard).now();
      const auto doomed = engine->shard(shard).schedule_at(now + 50.0, [] {});
      engine->shard(shard).schedule_at(now + 1.0, [this, shard, doomed] {
        engine->shard(shard).cancel(doomed);
      });
      const std::uint32_t peer = (shard + 1) % kShards;
      engine->post(shard, peer, now + 1.0, [this, peer] { tick(peer); });
    }
  } ticker{&engine};
  for (std::uint32_t s = 0; s < kShards; ++s) {
    engine.post(s, s, static_cast<double>(s) * 0.25, [&ticker, s] { ticker.tick(s); });
  }

  // Warm-up: grows every queue, slot map, and outbox to its periodic peak.
  engine.run_until(200.0);
  ASSERT_GT(ticker.fired, 0u);
  const std::uint64_t warm_fired = ticker.fired;

  // Counted pass: same periodic regime, zero allocations allowed. No gtest
  // assertions inside the window (they allocate).
  g_allocations.store(0);
  g_counting.store(true);
  engine.run_until(400.0);
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state sharded windowed run performed heap allocations";
  EXPECT_GT(ticker.fired, warm_fired);
  EXPECT_GT(engine.stats().cross_shard_messages, 0u);
  EXPECT_EQ(engine.aggregate_queue_stats().callback_heap_allocs, 0u);
}

}  // namespace
