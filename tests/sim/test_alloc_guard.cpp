// Allocation guard for the event engine: once the queue's backing storage
// has reached steady-state capacity, schedule/cancel/pop must not touch the
// heap at all — EventCallback keeps captures inline and the slot map recycles
// its records. The guard replaces the global allocation functions with
// counting wrappers (binary-wide, but only the bracketed window is counted)
// and asserts the count stays zero through a model-shaped workload.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t n) {
  note_allocation();
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned(std::size_t n, std::size_t align) {
  note_allocation();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return checked_malloc(n); }
void* operator new[](std::size_t n) { return checked_malloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using p2panon::sim::EventQueue;

// A capture the size of the model layers' largest scheduled lambda (leg
// delivery: this + shared_ptr + ids), comfortably inside the inline budget.
struct ModelCapture {
  void* self = nullptr;
  void* control_a = nullptr;
  void* control_b = nullptr;
  std::uint64_t tid = 0;
  std::uint32_t attempt = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t kind = 0;
};
static_assert(sizeof(ModelCapture) <= p2panon::sim::EventCallback::kInlineSize);

TEST(EventQueueAllocGuard, SteadyStateSchedulesWithoutAllocating) {
  EventQueue q;
  ModelCapture capture;
  constexpr int kPending = 2048;
  std::uint64_t fired = 0;

  // The fault-mode steady state — schedule a timer, cancel the previous one,
  // pop due events. Deterministic, so two runs trace identical storage-growth
  // profiles: the physical heap length (live + not-yet-surfaced stale entries)
  // and slot count peak at the same values each time.
  const auto run_workload = [&q, &capture, &fired] {
    double now = 0.0;
    p2panon::sim::EventId last = p2panon::sim::kInvalidEventId;
    for (int round = 0; round < 50'000; ++round) {
      const auto id = q.schedule(now + 5.0 + (round % 97), [capture, &fired] {
        ++fired;
        (void)capture;
      });
      if (round % 2 == 1) q.cancel(last);
      last = id;
      if (q.size() >= kPending / 2) {
        auto ev = q.pop();
        now = ev.time;
        ev.fn();
      }
    }
    while (!q.empty()) {
      auto ev = q.pop();
      now = ev.time;
      ev.fn();
    }
  };

  // Warm-up pass: grows the heap vector and the slot map to the exact peak
  // the counted pass will need. Capacity is retained across clear-less reuse.
  run_workload();

  // Counted pass: same workload, zero allocations allowed. No gtest
  // assertions inside the window (they allocate).
  g_allocations.store(0);
  g_counting.store(true);
  run_workload();
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state schedule/cancel/pop performed heap allocations";
  EXPECT_EQ(q.stats().callback_heap_allocs, 0u);
  EXPECT_GT(fired, 0u);
}

}  // namespace
