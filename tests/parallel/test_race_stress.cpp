// Race-stress tests for the parallel layer, written to give ThreadSanitizer
// (the `tsan` preset, see CMakePresets.json) maximal opportunity to observe
// an ordering violation: short tasks, many batches, concurrent submitters,
// and wait_idle() racing task completion. Under a non-TSan build these are
// ordinary (fast) correctness tests; the assertions double as happens-before
// anchors so a racy pool also fails functionally, not only under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

using namespace p2panon::parallel;

TEST(RaceStress, ManyTinyBatchesDrainCompletely) {
  // Tiny tasks + frequent wait_idle() hammers the queue/in-flight accounting
  // transition where a worker has popped a task but not yet run it.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 200; ++batch) {
    for (int i = 0; i < 8; ++i) pool.submit([&] { ++count; });
    pool.wait_idle();
    ASSERT_EQ(count.load(), (batch + 1) * 8);
  }
}

TEST(RaceStress, ConcurrentExternalSubmitters) {
  // submit() is documented thread-safe: several external threads feed one
  // pool while the main thread repeatedly drains it.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  constexpr int kPerSubmitter = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) pool.submit([&] { ++count; });
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(count.load(), 4 * kPerSubmitter);
}

TEST(RaceStress, TasksSubmittingTasksCascade) {
  // Recursive submission exercises the worker-side submit path racing the
  // queue-empty check in wait_idle().
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::function<void(int)> cascade = [&](int depth) {
    ++count;
    if (depth > 0) {
      pool.submit([&, depth] { cascade(depth - 1); });
      pool.submit([&, depth] { cascade(depth - 1); });
    }
  };
  for (int i = 0; i < 16; ++i) pool.submit([&] { cascade(5); });
  pool.wait_idle();
  // 16 roots, each a complete binary cascade of depth 5: 16 * (2^6 - 1).
  EXPECT_EQ(count.load(), 16 * 63);
}

TEST(RaceStress, ParallelForFalseSharingNeighbours) {
  // Adjacent writes from different workers: any missing synchronisation in
  // parallel_for's partitioning shows up as a TSan report here.
  ThreadPool pool(4);
  std::vector<std::uint64_t> out(4096, 0);
  parallel_for(pool, 0, out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST(RaceStress, ExceptionPathUnderLoad) {
  // The first-error capture races normal completions; the pool must stay
  // coherent (drain fully, rethrow exactly once) every iteration.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ok{0};
    for (int i = 0; i < 16; ++i) {
      if (i == 7) {
        pool.submit([] { throw std::runtime_error("stress boom"); });
      } else {
        pool.submit([&] { ++ok; });
      }
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    EXPECT_EQ(ok.load(), 15);
  }
}

TEST(RaceStress, RepeatedPoolConstructionTeardown) {
  // Construction/destruction races worker startup: a pool destroyed
  // immediately after submit must still run everything exactly once.
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> count{0};
    {
      ThreadPool pool(2);
      for (int i = 0; i < 4; ++i) pool.submit([&] { ++count; });
    }
    ASSERT_EQ(count.load(), 4);
  }
}
