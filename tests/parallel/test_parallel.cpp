#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

using namespace p2panon::parallel;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, TasksCanSubmitWork) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    ++count;
    pool.submit([&] { ++count; });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelFor, CoversFullRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++count; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ParallelFor, NonzeroBegin) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+..+19
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ThrowingTaskRethrownFromWaitIdle) {
  // A raw submit()ed task that throws must not escape the worker thread
  // (that would std::terminate); wait_idle() surfaces it on the caller.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.submit([] { throw std::runtime_error("task boom"); });
  pool.submit([&] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);  // non-throwing tasks still completed
}

TEST(ThreadPool, PoolUsableAfterTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The captured slot is cleared on rethrow: the next batch is clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { ++count; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, FirstExceptionWins) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.submit([i] { throw std::runtime_error("boom " + std::to_string(i)); });
  }
  // Exactly one rethrow: a second wait_idle() must come back clean.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, DestructorSwallowsUnobservedTaskException) {
  // A pool destroyed without wait_idle() after a task threw must still join
  // cleanly (the error is unobservable at that point, not fatal).
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("unobserved"); });
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++count; });
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, SingleIteration) {
  ThreadPool pool(4);
  int value = 0;
  parallel_for(pool, 0, 1, [&](std::size_t) { value = 42; });
  EXPECT_EQ(value, 42);
}

TEST(RunReplicates, ResultsIndexedByReplicate) {
  ThreadPool pool(4);
  auto results = run_replicates<std::size_t>(pool, 64, [](std::size_t r) { return r * r; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t r = 0; r < 64; ++r) EXPECT_EQ(results[r], r * r);
}

TEST(RunReplicates, DeterministicAcrossThreadCounts) {
  auto work = [](std::size_t r) {
    // Deterministic per-replicate pseudo-work.
    std::uint64_t x = r * 2654435761ULL + 1;
    for (int i = 0; i < 100; ++i) x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x;
  };
  ThreadPool one(1), many(8);
  auto a = run_replicates<std::uint64_t>(one, 32, work);
  auto b = run_replicates<std::uint64_t>(many, 32, work);
  EXPECT_EQ(a, b);
}
