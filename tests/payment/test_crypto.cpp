#include "payment/crypto.hpp"

#include <gtest/gtest.h>

#include <set>

using namespace p2panon::payment::crypto;
namespace rng = p2panon::sim::rng;

TEST(ModArith, MulmodMatchesSmallCases) {
  EXPECT_EQ(mulmod(7, 9, 13), 63 % 13);
  EXPECT_EQ(mulmod(0, 5, 7), 0u);
}

TEST(ModArith, MulmodNoOverflow) {
  const u64 big = 0xFFFFFFFFFFFFULL;  // ~2^48
  const u64 m = (1ULL << 61) - 1;
  // (big * big) overflows 64 bits; verify against __int128 reference.
  const u64 expect = static_cast<u64>((static_cast<__uint128_t>(big) * big) % m);
  EXPECT_EQ(mulmod(big, big, m), expect);
}

TEST(ModArith, PowmodKnownValues) {
  EXPECT_EQ(powmod(2, 10, 1000), 24u);
  EXPECT_EQ(powmod(3, 0, 7), 1u);
  EXPECT_EQ(powmod(10, 1, 7), 3u);
}

TEST(ModArith, PowmodFermat) {
  // a^(p-1) = 1 mod p for prime p, gcd(a, p) = 1.
  const u64 p = 1000000007ULL;
  for (u64 a : {2ULL, 12345ULL, 999999999ULL}) {
    EXPECT_EQ(powmod(a, p - 1, p), 1u);
  }
}

TEST(ModArith, ModinvRoundTrip) {
  const u64 m = 1000000007ULL;
  for (u64 a : {2ULL, 3ULL, 65537ULL, 999999999ULL}) {
    auto inv = modinv(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(mulmod(a, *inv, m), 1u);
  }
}

TEST(ModArith, ModinvNonCoprimeFails) {
  EXPECT_FALSE(modinv(6, 9).has_value());
  EXPECT_FALSE(modinv(10, 100).has_value());
}

TEST(Primality, KnownPrimesAndComposites) {
  for (u64 p : {2ULL, 3ULL, 5ULL, 7919ULL, 1000000007ULL, 2147483647ULL}) {
    EXPECT_TRUE(is_prime(p)) << p;
  }
  for (u64 c : {0ULL, 1ULL, 4ULL, 561ULL /*Carmichael*/, 1000000007ULL * 3ULL,
                2147483647ULL * 2147483647ULL}) {
    EXPECT_FALSE(is_prime(c)) << c;
  }
}

TEST(Primality, NextPrimeIsPrimeAndGeq) {
  for (u64 n : {10ULL, 100ULL, 1ULL << 30, (1ULL << 31) + 12345ULL}) {
    const u64 p = next_prime(n);
    EXPECT_GE(p, n);
    EXPECT_TRUE(is_prime(p));
  }
}

TEST(Digest, DeterministicAndSensitive) {
  EXPECT_EQ(digest({1, 2, 3}), digest({1, 2, 3}));
  EXPECT_NE(digest({1, 2, 3}), digest({1, 2, 4}));
  EXPECT_NE(digest({1, 2, 3}), digest({3, 2, 1}));
  EXPECT_NE(digest({}), digest({0}));
}

TEST(Mac, KeyedAndTamperEvident) {
  EXPECT_EQ(mac(42, {7, 8}), mac(42, {7, 8}));
  EXPECT_NE(mac(42, {7, 8}), mac(43, {7, 8}));
  EXPECT_NE(mac(42, {7, 8}), mac(42, {7, 9}));
}

TEST(Rsa, KeypairSignVerifyRoundTrip) {
  auto stream = rng::Stream(1).child("rsa");
  const RsaKeyPair kp = generate_keypair(stream);
  ASSERT_TRUE(kp.pub.valid());
  for (u64 m : {u64{1}, u64{42}, kp.pub.n - 1, kp.pub.n / 2}) {
    const u64 sig = rsa_sign(kp, m);
    EXPECT_TRUE(rsa_verify(kp.pub, m, sig));
  }
}

TEST(Rsa, VerifyRejectsWrongMessage) {
  auto stream = rng::Stream(2).child("rsa");
  const RsaKeyPair kp = generate_keypair(stream);
  const u64 sig = rsa_sign(kp, 1000);
  EXPECT_FALSE(rsa_verify(kp.pub, 1001, sig));
}

TEST(Rsa, VerifyRejectsForgedSignature) {
  auto stream = rng::Stream(3).child("rsa");
  const RsaKeyPair kp = generate_keypair(stream);
  EXPECT_FALSE(rsa_verify(kp.pub, 1000, 999999));
}

TEST(Rsa, VerifyRejectsWrongKey) {
  auto s1 = rng::Stream(4).child("rsa");
  auto s2 = rng::Stream(5).child("rsa");
  const RsaKeyPair kp1 = generate_keypair(s1);
  const RsaKeyPair kp2 = generate_keypair(s2);
  const u64 m = 777 % kp1.pub.n;
  const u64 sig = rsa_sign(kp1, m);
  EXPECT_FALSE(rsa_verify(kp2.pub, m % kp2.pub.n, sig % kp2.pub.n));
}

TEST(Rsa, DistinctStreamsDistinctKeys) {
  auto s1 = rng::Stream(6).child("rsa");
  auto s2 = rng::Stream(7).child("rsa");
  EXPECT_NE(generate_keypair(s1).pub.n, generate_keypair(s2).pub.n);
}

TEST(BlindSignature, UnblindedSignatureVerifies) {
  auto key_stream = rng::Stream(8).child("rsa");
  const RsaKeyPair kp = generate_keypair(key_stream);
  auto blind_stream = rng::Stream(9).child("blind");
  for (int i = 0; i < 20; ++i) {
    const u64 message = (1234567ULL * static_cast<u64>(i + 1)) % kp.pub.n;
    const Blinding b = blind(kp.pub, message, blind_stream);
    // Signer sees only the blinded message.
    const u64 blind_sig = rsa_sign(kp, b.blinded_message);
    const u64 sig = unblind(kp.pub, blind_sig, b);
    EXPECT_TRUE(rsa_verify(kp.pub, message, sig));
  }
}

TEST(BlindSignature, BlindedMessageHidesOriginal) {
  auto key_stream = rng::Stream(10).child("rsa");
  const RsaKeyPair kp = generate_keypair(key_stream);
  auto blind_stream = rng::Stream(11).child("blind");
  const u64 message = 424242 % kp.pub.n;
  const Blinding b = blind(kp.pub, message, blind_stream);
  EXPECT_NE(b.blinded_message, message);
}

TEST(BlindSignature, SameMessageDifferentBlindings) {
  // Unlinkability basis: two blindings of the same message look different.
  auto key_stream = rng::Stream(12).child("rsa");
  const RsaKeyPair kp = generate_keypair(key_stream);
  auto blind_stream = rng::Stream(13).child("blind");
  const u64 message = 99999 % kp.pub.n;
  const Blinding b1 = blind(kp.pub, message, blind_stream);
  const Blinding b2 = blind(kp.pub, message, blind_stream);
  EXPECT_NE(b1.blinded_message, b2.blinded_message);
}
