// Seed-parameterised crypto properties: every keypair the bank could ever
// derive must satisfy the blind-signature round trip and reject forgeries.
#include <gtest/gtest.h>

#include "payment/crypto.hpp"

using namespace p2panon::payment::crypto;
namespace rng = p2panon::sim::rng;

class CryptoProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CryptoProperties() {
    auto stream = rng::Stream(GetParam()).child("kp");
    kp_ = generate_keypair(stream);
  }
  RsaKeyPair kp_;
};

TEST_P(CryptoProperties, KeypairStructurallySound) {
  EXPECT_TRUE(kp_.pub.valid());
  EXPECT_GT(kp_.pub.n, 1ULL << 59);  // two ~31-bit primes
  EXPECT_EQ(kp_.pub.e, 65537u);
  EXPECT_GT(kp_.d, 1u);
}

TEST_P(CryptoProperties, SignVerifyRoundTripAcrossMessages) {
  auto msg_stream = rng::Stream(GetParam()).child("msgs");
  for (int i = 0; i < 25; ++i) {
    const u64 m = msg_stream.next_u64() % kp_.pub.n;
    const u64 sig = rsa_sign(kp_, m);
    EXPECT_TRUE(rsa_verify(kp_.pub, m, sig));
    EXPECT_FALSE(rsa_verify(kp_.pub, (m + 1) % kp_.pub.n, sig));
  }
}

TEST_P(CryptoProperties, BlindSignUnblindVerify) {
  auto stream = rng::Stream(GetParam()).child("blind");
  for (int i = 0; i < 25; ++i) {
    const u64 m = stream.next_u64() % kp_.pub.n;
    const Blinding b = blind(kp_.pub, m, stream);
    EXPECT_NE(b.blinded_message, m);
    const u64 sig = unblind(kp_.pub, rsa_sign(kp_, b.blinded_message), b);
    EXPECT_TRUE(rsa_verify(kp_.pub, m, sig));
  }
}

TEST_P(CryptoProperties, BlindingIsInvertibleMultiplier) {
  // r^e * r^{-e} = 1: unblinding a blinded *unsigned* message recovers
  // nothing useful, but unblinder * r^e = 1 mod n must hold structurally.
  auto stream = rng::Stream(GetParam()).child("inv");
  const u64 m = 12345 % kp_.pub.n;
  const Blinding b = blind(kp_.pub, m, stream);
  // blinded = m * r^e; multiply by (r^{-1})^e — recoverable via e-th power
  // of the unblinder.
  const u64 r_inv_e = powmod(b.unblinder, kp_.pub.e, kp_.pub.n);
  EXPECT_EQ(mulmod(b.blinded_message, r_inv_e, kp_.pub.n), m);
}

TEST_P(CryptoProperties, MacForgeryResistanceSmoke) {
  auto stream = rng::Stream(GetParam()).child("mac");
  const u64 key = stream.next_u64();
  const u64 honest = mac(key, {1, 2, 3});
  // 1000 random keys should essentially never reproduce the MAC.
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (mac(stream.next_u64(), {1, 2, 3}) == honest) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoProperties, ::testing::Values(1, 2, 3, 7, 11, 99));
