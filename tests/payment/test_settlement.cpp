#include "payment/settlement.hpp"

#include <gtest/gtest.h>

#include "payment/token.hpp"

using namespace p2panon::payment;
namespace rng = p2panon::sim::rng;
using p2panon::net::NodeId;

namespace {

/// Fixture: bank with accounts for nodes 0..4, node 0 the initiator; one
/// funded escrow; a settlement over two recorded paths:
///   conn 1: 0 -> 1 -> 2 -> R(4)
///   conn 2: 0 -> 1 -> 3 -> R(4)
/// Terms: P_f = 10 credits, P_r = 20 credits; ||pi|| = 3 (forwarders 1,2,3);
/// total instances = 4.
class SettlementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (NodeId n = 0; n < 5; ++n) {
      accounts_.push_back(bank_.open_account(n, from_credits(1000.0), 0xF00 + n));
    }
    refund_ = bank_.open_pseudonymous_account();

    Wallet wallet(bank_, accounts_[0], rng::Stream(7).child("w"));
    const Amount committed = 4 * p_f_ + p_r_;
    auto coins = wallet.withdraw(committed);
    ASSERT_TRUE(coins.has_value());
    auto escrow = bank_.open_escrow(*coins);
    ASSERT_TRUE(escrow.has_value());
    escrow_ = *escrow;

    std::vector<PathRecord> records{
        PathRecord{1, 0, 4, {1, 2}},
        PathRecord{2, 0, 4, {1, 3}},
    };
    sid_ = engine_.open(kPair, escrow_, SettlementTerms{p_f_, p_r_}, records, refund_);
  }

  ForwardReceipt receipt_for(NodeId fwd, std::uint32_t conn, NodeId pred, NodeId succ) {
    return make_receipt(bank_.account_mac_key(accounts_[fwd]), kPair, conn, fwd, pred, succ);
  }

  static constexpr p2panon::net::PairId kPair = 11;
  const Amount p_f_ = from_credits(10.0);
  const Amount p_r_ = from_credits(20.0);

  Bank bank_{rng::Stream(1).child("bank")};
  SettlementEngine engine_{bank_};
  std::vector<AccountId> accounts_;
  AccountId refund_ = kInvalidAccount;
  EscrowId escrow_ = 0;
  SettlementId sid_ = 0;
};

}  // namespace

TEST_F(SettlementTest, ForwarderSetSizeFromRecords) {
  EXPECT_EQ(engine_.forwarder_set_size(sid_), 3u);
}

TEST_F(SettlementTest, HonestClaimsAccepted) {
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2)),
            ClaimResult::kAccepted);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[2], receipt_for(2, 1, 1, 4)),
            ClaimResult::kAccepted);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 2, 0, 3)),
            ClaimResult::kAccepted);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[3], receipt_for(3, 2, 1, 4)),
            ClaimResult::kAccepted);
}

TEST_F(SettlementTest, FullSettlementPaysMPfPlusShares) {
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  engine_.submit_claim(sid_, accounts_[2], receipt_for(2, 1, 1, 4));
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 2, 0, 3));
  engine_.submit_claim(sid_, accounts_[3], receipt_for(3, 2, 1, 4));
  const SettlementReport& report = engine_.close(sid_);

  // Node 1 forwarded twice: 2*P_f + a routing share. P_r = 20000 milli
  // splits over ||pi|| = 3 as [6667, 6667, 6666] (largest remainder), paid
  // in ascending account order.
  const Amount share = p_r_ / 3;  // 6666
  EXPECT_EQ(report.payouts.at(accounts_[1]), 2 * p_f_ + share + 1);
  EXPECT_EQ(report.payouts.at(accounts_[2]), p_f_ + share + 1);
  EXPECT_EQ(report.payouts.at(accounts_[3]), p_f_ + share);
  EXPECT_EQ(report.paid_out + report.refunded, report.escrow_in);
  EXPECT_EQ(report.refunded, 0);  // everything claimed
  EXPECT_EQ(report.accepted_claims, 4u);
  EXPECT_EQ(report.forwarder_set_size, 3u);
}

TEST_F(SettlementTest, ForgedMacRejected) {
  ForwardReceipt r = receipt_for(1, 1, 0, 2);
  r.mac ^= 1;  // tamper
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], r), ClaimResult::kBadMac);
}

TEST_F(SettlementTest, ReceiptSignedWithWrongKeyRejected) {
  // Node 2 forges a receipt for node 1's hop using its own key.
  ForwardReceipt r = make_receipt(bank_.account_mac_key(accounts_[2]), kPair, 1, 1, 0, 2);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], r), ClaimResult::kBadMac);
}

TEST_F(SettlementTest, ClaimingSomeoneElsesReceiptRejected) {
  // Node 2 tries to redeem node 1's (valid) receipt.
  ForwardReceipt r = receipt_for(1, 1, 0, 2);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[2], r), ClaimResult::kWrongClaimant);
}

TEST_F(SettlementTest, OverClaimRejected) {
  // Node 3 claims a hop on connection 1 where it never forwarded.
  ForwardReceipt r = receipt_for(3, 1, 0, 4);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[3], r), ClaimResult::kNotOnPath);
}

TEST_F(SettlementTest, ReplayRejected) {
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2)),
            ClaimResult::kAccepted);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2)),
            ClaimResult::kDuplicate);
}

TEST_F(SettlementTest, WrongPairIdRejected) {
  ForwardReceipt r = make_receipt(bank_.account_mac_key(accounts_[1]), 999, 1, 1, 0, 2);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], r), ClaimResult::kUnknownSettlement);
}

TEST_F(SettlementTest, UnknownSettlementIdRejected) {
  EXPECT_EQ(engine_.submit_claim(12345, accounts_[1], receipt_for(1, 1, 0, 2)),
            ClaimResult::kUnknownSettlement);
}

TEST_F(SettlementTest, UnclaimedSharesRefundedNotRedistributed) {
  // Only node 1 claims (both instances); nodes 2 and 3 never claim.
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 2, 0, 3));
  const SettlementReport& report = engine_.close(sid_);

  // Node 1 gets its 2*P_f plus exactly ONE routing share of P_r/||pi||
  // (the first largest-remainder share, 6667 of 20000/3).
  EXPECT_EQ(report.payouts.at(accounts_[1]), 2 * p_f_ + p_r_ / 3 + 1);
  // The rest (2 unclaimed P_f instances + 2 routing shares) is refunded.
  EXPECT_EQ(report.paid_out + report.refunded, report.escrow_in);
  EXPECT_GT(report.refunded, 0);
  EXPECT_EQ(bank_.balance(refund_), report.refunded);
}

TEST_F(SettlementTest, CloseIsIdempotent) {
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  const SettlementReport& first = engine_.close(sid_);
  const SettlementReport& second = engine_.close(sid_);
  EXPECT_EQ(first.paid_out, second.paid_out);
  EXPECT_EQ(&first, &second);
  EXPECT_TRUE(engine_.is_closed(sid_));
}

TEST_F(SettlementTest, ClaimAfterCloseRejected) {
  engine_.close(sid_);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2)),
            ClaimResult::kNotOpen);
  EXPECT_EQ(engine_.claims_after_terminal(), 1u);
}

TEST_F(SettlementTest, RejectedClaimsCounted) {
  ForwardReceipt bad = receipt_for(1, 1, 0, 2);
  bad.mac ^= 1;
  engine_.submit_claim(sid_, accounts_[1], bad);
  engine_.submit_claim(sid_, accounts_[3], receipt_for(3, 1, 0, 4));  // over-claim
  const SettlementReport& report = engine_.close(sid_);
  EXPECT_EQ(report.rejected_claims, 2u);
}

TEST_F(SettlementTest, MoneyConservedThroughSettlement) {
  const Amount before = bank_.total_money() + bank_.outstanding_coin_value();
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  engine_.submit_claim(sid_, accounts_[2], receipt_for(2, 1, 1, 4));
  engine_.close(sid_);
  EXPECT_EQ(bank_.total_money() + bank_.outstanding_coin_value(), before);
}

TEST(SettlementRepeatedForwarder, NodeOnTwoPositionsOfOnePath) {
  // Path: 0 -> 1 -> 2 -> 1 -> R(3): node 1 occupies two positions with
  // different (pred, succ); both instances must be claimable.
  Bank bank(rng::Stream(20).child("bank"));
  SettlementEngine engine(bank);
  std::vector<AccountId> acct;
  for (NodeId n = 0; n < 4; ++n) acct.push_back(bank.open_account(n, from_credits(100.0), n + 1));
  const AccountId refund = bank.open_pseudonymous_account();

  Wallet wallet(bank, acct[0], rng::Stream(21).child("w"));
  const Amount p_f = from_credits(5.0), p_r = from_credits(10.0);
  auto coins = wallet.withdraw(3 * p_f + p_r);
  auto escrow = bank.open_escrow(*coins);
  ASSERT_TRUE(escrow.has_value());

  std::vector<PathRecord> records{PathRecord{1, 0, 3, {1, 2, 1}}};
  const SettlementId sid = engine.open(5, *escrow, SettlementTerms{p_f, p_r}, records, refund);
  EXPECT_EQ(engine.forwarder_set_size(sid), 2u);  // {1, 2}

  auto r1a = make_receipt(bank.account_mac_key(acct[1]), 5, 1, 1, 0, 2);
  auto r2 = make_receipt(bank.account_mac_key(acct[2]), 5, 1, 2, 1, 1);
  auto r1b = make_receipt(bank.account_mac_key(acct[1]), 5, 1, 1, 2, 3);
  EXPECT_EQ(engine.submit_claim(sid, acct[1], r1a), ClaimResult::kAccepted);
  EXPECT_EQ(engine.submit_claim(sid, acct[2], r2), ClaimResult::kAccepted);
  EXPECT_EQ(engine.submit_claim(sid, acct[1], r1b), ClaimResult::kAccepted);

  const auto& report = engine.close(sid);
  EXPECT_EQ(report.accepted_claims, 3u);
  // Node 1: 2 instances + one routing share (of 2).
  EXPECT_EQ(report.payouts.at(acct[1]), 2 * p_f + p_r / 2);
  EXPECT_EQ(report.payouts.at(acct[2]), p_f + p_r / 2);
}

// --- Crash-tolerant lifecycle (state machine, deadlines, replay guards). ---

TEST_F(SettlementTest, StateMachineOpenClaimingClosed) {
  EXPECT_EQ(engine_.state(sid_), SettlementState::kOpen);
  EXPECT_EQ(engine_.open_settlements(), 1u);
  EXPECT_EQ(engine_.report(sid_), nullptr);

  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  EXPECT_EQ(engine_.state(sid_), SettlementState::kClaiming);
  EXPECT_FALSE(engine_.is_closed(sid_));

  const SettlementReport& report = engine_.close(sid_);
  EXPECT_EQ(engine_.state(sid_), SettlementState::kClosed);
  EXPECT_EQ(report.outcome, SettlementState::kClosed);
  EXPECT_FALSE(report.pro_rata);
  EXPECT_EQ(report.completed_connections, 2u);
  EXPECT_EQ(engine_.open_settlements(), 0u);
  EXPECT_EQ(engine_.report(sid_), &report);
}

TEST_F(SettlementTest, AbandonWithClaimsPaysProRata) {
  const Amount before = bank_.total_money() + bank_.outstanding_coin_value();
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  const SettlementReport& report = engine_.abandon(sid_);

  EXPECT_EQ(engine_.state(sid_), SettlementState::kAbandoned);
  EXPECT_EQ(report.outcome, SettlementState::kAbandoned);
  EXPECT_TRUE(report.pro_rata);
  // The one verified instance pays m*P_f + its routing share; the rest of
  // the escrow goes back to the initiator's refund account.
  EXPECT_EQ(report.payouts.at(accounts_[1]), p_f_ + p_r_ / 3 + 1);
  EXPECT_EQ(report.paid_out + report.refunded, report.escrow_in);
  EXPECT_EQ(bank_.balance(refund_), report.refunded);
  EXPECT_EQ(bank_.total_money() + bank_.outstanding_coin_value(), before);
}

TEST_F(SettlementTest, AbandonWithoutClaimsExpiresWithFullRefund) {
  const SettlementReport& report = engine_.abandon(sid_);
  EXPECT_EQ(engine_.state(sid_), SettlementState::kExpired);
  EXPECT_EQ(report.outcome, SettlementState::kExpired);
  EXPECT_FALSE(report.pro_rata);
  EXPECT_EQ(report.paid_out, 0);
  EXPECT_EQ(report.refunded, report.escrow_in);
  EXPECT_EQ(bank_.balance(refund_), report.escrow_in);
}

TEST_F(SettlementTest, DoubleRefundImpossible) {
  // Close pays and refunds once; a racing abandon (or a replayed close) must
  // return the stored report without moving money again.
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  const SettlementReport& first = engine_.close(sid_);
  const Amount refund_after_close = bank_.balance(refund_);

  const SettlementReport& raced = engine_.abandon(sid_);
  EXPECT_EQ(&first, &raced);
  EXPECT_EQ(engine_.state(sid_), SettlementState::kClosed);  // close won
  EXPECT_EQ(bank_.balance(refund_), refund_after_close);
  EXPECT_EQ(engine_.close(sid_).refunded, first.refunded);
  EXPECT_EQ(bank_.balance(refund_), refund_after_close);
}

TEST_F(SettlementTest, ClaimAgainstAbandonedRejected) {
  engine_.submit_claim(sid_, accounts_[1], receipt_for(1, 1, 0, 2));
  engine_.abandon(sid_);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[2], receipt_for(2, 1, 1, 4)),
            ClaimResult::kNotOpen);
  EXPECT_EQ(engine_.claims_after_terminal(), 1u);
}

TEST_F(SettlementTest, NoDeadlineNeverExpires) {
  EXPECT_EQ(engine_.deadline(sid_), kNoSettlementDeadline);
  EXPECT_EQ(engine_.expire_due(1.0e12), 0u);
  EXPECT_EQ(engine_.state(sid_), SettlementState::kOpen);
}

TEST_F(SettlementTest, ReplayedReceiptAcrossTwoSettlementsRejected) {
  // The set re-forms: a sibling settlement for the same pair covers the same
  // connection 1. A receipt redeemed under the first settlement is a replay
  // against the second even though the second has never seen it.
  const ForwardReceipt r = receipt_for(1, 1, 0, 2);
  EXPECT_EQ(engine_.submit_claim(sid_, accounts_[1], r), ClaimResult::kAccepted);
  engine_.close(sid_);

  Wallet wallet(bank_, accounts_[0], rng::Stream(8).child("w2"));
  auto coins = wallet.withdraw(2 * p_f_ + p_r_);
  ASSERT_TRUE(coins.has_value());
  auto escrow = bank_.open_escrow(*coins);
  ASSERT_TRUE(escrow.has_value());
  const SettlementId sibling =
      engine_.open(kPair, *escrow, SettlementTerms{p_f_, p_r_}, {PathRecord{1, 0, 4, {1, 2}}},
                   bank_.open_pseudonymous_account());

  EXPECT_EQ(engine_.submit_claim(sibling, accounts_[1], r), ClaimResult::kDuplicate);
  EXPECT_EQ(engine_.cross_settlement_replays(), 1u);
  // An instance the first settlement never paid is still claimable here.
  EXPECT_EQ(engine_.submit_claim(sibling, accounts_[2], receipt_for(2, 1, 1, 4)),
            ClaimResult::kAccepted);
}

TEST(SettlementDeadline, ExpireDueSweepsOnlyPastDeadlines) {
  Bank bank(rng::Stream(30).child("bank"));
  SettlementEngine engine(bank);
  std::vector<AccountId> acct;
  for (NodeId n = 0; n < 4; ++n) acct.push_back(bank.open_account(n, from_credits(100.0), n + 1));
  const Amount p_f = from_credits(5.0), p_r = from_credits(10.0);

  auto open_one = [&](std::uint64_t wseed, p2panon::net::PairId pair, double deadline) {
    Wallet wallet(bank, acct[0], rng::Stream(wseed).child("w"));
    auto coins = wallet.withdraw(2 * p_f + p_r);
    auto escrow = bank.open_escrow(*coins);
    EXPECT_TRUE(escrow.has_value());
    return engine.open(pair, *escrow, SettlementTerms{p_f, p_r},
                       {PathRecord{1, 0, 3, {1, 2}}}, bank.open_pseudonymous_account(),
                       deadline);
  };
  const SettlementId early = open_one(31, 5, 100.0);  // claims pending at expiry
  const SettlementId silent = open_one(32, 6, 100.0);  // zero claims at expiry
  const SettlementId late = open_one(33, 7, 500.0);

  EXPECT_EQ(engine.submit_claim(
                early, acct[1], make_receipt(bank.account_mac_key(acct[1]), 5, 1, 1, 0, 2)),
            ClaimResult::kAccepted);

  EXPECT_EQ(engine.expire_due(50.0), 0u);  // nothing due yet
  EXPECT_EQ(engine.expire_due(100.0), 2u);
  EXPECT_EQ(engine.state(early), SettlementState::kAbandoned);
  EXPECT_TRUE(engine.report(early)->pro_rata);
  EXPECT_EQ(engine.state(silent), SettlementState::kExpired);
  EXPECT_EQ(engine.report(silent)->refunded, engine.report(silent)->escrow_in);
  EXPECT_EQ(engine.state(late), SettlementState::kOpen);
  EXPECT_EQ(engine.expire_due(100.0), 0u);  // idempotent
  EXPECT_EQ(engine.expire_due(500.0), 1u);
  EXPECT_EQ(engine.state(late), SettlementState::kExpired);
}
