// Sharded settlement plane contracts (src/payment/sharded_settlement.*):
// batched claim submission is outcome-identical to sequential submit_claim,
// every bank partition conserves money independently AND the merged view
// conserves globally, a forged aggregate MAC refuses the whole batch before
// the engine sees it, and a receipt redeemed by two different bank
// partitions — impossible through the routed entry points — is caught by
// the merge reconciliation's cross-partition uniqueness check.
#include "payment/sharded_settlement.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "payment/settlement.hpp"

using namespace p2panon::payment;
namespace rng = p2panon::sim::rng;
using p2panon::net::NodeId;
using p2panon::net::PairId;

namespace {

constexpr double kInitialCredits = 1000.0;

/// Two recorded paths of pair `pair`:
///   conn 1: 0 -> 1 -> 2 -> 4
///   conn 2: 0 -> 1 -> 3 -> 4
std::vector<PathRecord> two_records() {
  return {PathRecord{1, 0, 4, {1, 2}}, PathRecord{2, 0, 4, {1, 3}}};
}

/// Receipts for every forwarder instance on the two paths, keyed by
/// `key_of(fwd)`.
template <typename KeyFn>
std::vector<std::pair<NodeId, ForwardReceipt>> all_receipts(PairId pair, KeyFn key_of) {
  std::vector<std::pair<NodeId, ForwardReceipt>> out;
  out.emplace_back(1, make_receipt(key_of(1), pair, 1, 1, 0, 2));
  out.emplace_back(2, make_receipt(key_of(2), pair, 1, 2, 1, 4));
  out.emplace_back(1, make_receipt(key_of(1), pair, 2, 1, 0, 3));
  out.emplace_back(3, make_receipt(key_of(3), pair, 2, 3, 1, 4));
  return out;
}

/// One standalone bank + engine over accounts 0..4 with an open settlement,
/// for the batch-vs-sequential equivalence pin.
struct SerialRig {
  static constexpr PairId kPair = 11;
  Amount p_f = from_credits(10.0);
  Amount p_r = from_credits(20.0);
  Bank bank{rng::Stream(1).child("bank")};
  SettlementEngine engine{bank};
  std::vector<AccountId> accounts;
  SettlementId sid = 0;

  SerialRig() {
    for (NodeId n = 0; n < 5; ++n) {
      accounts.push_back(bank.open_account(n, from_credits(kInitialCredits), 0xF00 + n));
    }
    Wallet wallet(bank, accounts[0], rng::Stream(7).child("w"));
    auto coins = wallet.withdraw(4 * p_f + p_r);
    auto escrow = bank.open_escrow(*coins);
    sid = engine.open(kPair, *escrow, SettlementTerms{p_f, p_r}, two_records(), accounts[0]);
  }

  [[nodiscard]] crypto::u64 key_of(NodeId n) const { return bank.account_mac_key(accounts[n]); }
};

}  // namespace

TEST(ClaimBatch, MatchesSequentialSubmitClaimExactly) {
  SerialRig seq;
  SerialRig batch;

  // Sequential oracle: one submit_claim per receipt, in order.
  std::size_t seq_accepted = 0;
  for (const auto& [fwd, r] : all_receipts(SerialRig::kPair, [&](NodeId n) { return seq.key_of(n); })) {
    if (seq.engine.submit_claim(seq.sid, seq.accounts[fwd], r) == ClaimResult::kAccepted) {
      ++seq_accepted;
    }
  }

  // Batched: group the same receipts per claimant (order preserved).
  for (NodeId fwd : {1, 2, 3}) {
    std::vector<ForwardReceipt> group;
    for (const auto& [f, r] : all_receipts(SerialRig::kPair, [&](NodeId n) { return batch.key_of(n); })) {
      if (f == fwd) group.push_back(r);
    }
    batch.engine.submit_claim_batch(batch.sid, batch.accounts[fwd], group);
  }

  const SettlementReport& a = seq.engine.close(seq.sid);
  const SettlementReport& b = batch.engine.close(batch.sid);
  EXPECT_EQ(seq_accepted, 4u);
  EXPECT_EQ(a.accepted_claims, b.accepted_claims);
  EXPECT_EQ(a.paid_out, b.paid_out);
  EXPECT_EQ(a.refunded, b.refunded);
  EXPECT_EQ(a.payouts, b.payouts);
  EXPECT_EQ(seq.engine.claims_accepted(), batch.engine.claims_accepted());
  EXPECT_EQ(seq.engine.claims_rejected(), batch.engine.claims_rejected());
}

TEST(ClaimBatch, BadReceiptMacRejectedWithinBatch) {
  SerialRig rig;
  auto good = make_receipt(rig.key_of(1), SerialRig::kPair, 1, 1, 0, 2);
  auto forged = make_receipt(rig.key_of(1), SerialRig::kPair, 2, 1, 0, 3);
  forged.mac ^= 1;  // breaks the per-receipt MAC only
  const auto out =
      rig.engine.submit_claim_batch(rig.sid, rig.accounts[1], std::vector{good, forged});
  EXPECT_EQ(out.accepted, 1u);
  EXPECT_EQ(out.rejected, 1u);
}

namespace {

/// Plane fixture: B = 3 partitions over 8 nodes, two settled pairs.
class PlaneTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 8;
  static constexpr std::uint32_t kPartitions = 3;
  const Amount p_f_ = from_credits(10.0);
  const Amount p_r_ = from_credits(20.0);

  ShardedSettlementPlane plane_{kPartitions, kNodes, from_credits(kInitialCredits),
                                rng::Stream(42).child("plane")};

  /// Open pair `key`, submit one sealed aggregate per forwarder, close.
  SettlementHandle settle_pair(SettlementKey key) {
    const auto pair = static_cast<PairId>(key);
    auto handle = plane_.open_settlement(key, pair, 0, 4 * p_f_ + p_r_,
                                         SettlementTerms{p_f_, p_r_}, two_records());
    EXPECT_TRUE(handle.has_value());
    for (NodeId fwd : {1, 2, 3}) {
      AggregatedClaim claim;
      claim.claimant = plane_.account_of(fwd);
      claim.epoch = 0;
      for (const auto& [f, r] :
           all_receipts(pair, [&](NodeId n) { return plane_.mac_key_of(n); })) {
        if (f == fwd) claim.receipts.push_back(r);
      }
      seal_aggregated_claim(plane_.mac_key_of(fwd), key, claim);
      const auto out = plane_.submit_aggregated_claim(key, *handle, claim);
      EXPECT_TRUE(out.aggregate_mac_ok);
      EXPECT_EQ(out.rejected, 0u);
    }
    plane_.close_settlement(*handle);
    return *handle;
  }
};

}  // namespace

TEST_F(PlaneTest, ConservationPerPartitionAndGlobally) {
  const SettlementHandle h1 = settle_pair(11);
  const SettlementHandle h2 = settle_pair(12);
  // Distinct keys may or may not share a partition; conservation holds
  // either way, in every partition and in the merged view.
  for (std::uint32_t b = 0; b < plane_.partition_count(); ++b) {
    EXPECT_TRUE(plane_.partition_conserved(b)) << "partition " << b;
  }
  const PlaneReconciliation rec = plane_.reconcile();
  EXPECT_TRUE(rec.global_conserved);
  EXPECT_EQ(rec.cross_partition_replays, 0u);
  EXPECT_TRUE(rec.ok());
  EXPECT_EQ(rec.closed, 2u);
  EXPECT_EQ(rec.claims_accepted, 8u);

  // Forwarders earned, the initiator paid — visible through merged_balance
  // regardless of which partitions hosted the settlements.
  EXPECT_GT(plane_.merged_balance(plane_.account_of(1)), from_credits(kInitialCredits));
  EXPECT_LT(plane_.merged_balance(plane_.account_of(0)), from_credits(kInitialCredits));
  (void)h1;
  (void)h2;
}

TEST_F(PlaneTest, ForgedAggregateMacRefusedBeforeEngine) {
  const SettlementKey key = 21;
  auto handle = plane_.open_settlement(key, static_cast<PairId>(key), 0, 4 * p_f_ + p_r_,
                                       SettlementTerms{p_f_, p_r_}, two_records());
  ASSERT_TRUE(handle.has_value());
  AggregatedClaim claim;
  claim.claimant = plane_.account_of(1);
  claim.epoch = 0;
  claim.receipts.push_back(make_receipt(plane_.mac_key_of(1), static_cast<PairId>(key), 1, 1, 0, 2));
  seal_aggregated_claim(plane_.mac_key_of(1), key, claim);
  claim.aggregate_mac ^= 1;

  const auto out = plane_.submit_aggregated_claim(key, *handle, claim);
  EXPECT_FALSE(out.aggregate_mac_ok);
  EXPECT_EQ(out.accepted, 0u);
  EXPECT_EQ(out.rejected, 1u);
  EXPECT_EQ(plane_.aggregates_refused(), 1u);
  // The engine never saw the batch: a follow-up honest aggregate still
  // redeems every receipt.
  AggregatedClaim honest = claim;
  honest.aggregate_mac = 0;
  seal_aggregated_claim(plane_.mac_key_of(1), key, honest);
  const auto ok = plane_.submit_aggregated_claim(key, *handle, honest);
  EXPECT_TRUE(ok.aggregate_mac_ok);
  EXPECT_EQ(ok.accepted, 1u);
  plane_.close_settlement(*handle);
  EXPECT_TRUE(plane_.reconcile().ok());
}

TEST_F(PlaneTest, ExpiredSettlementRefundsAndReconciles) {
  const SettlementKey key = 31;
  auto handle = plane_.open_settlement(key, static_cast<PairId>(key), 0, 4 * p_f_ + p_r_,
                                       SettlementTerms{p_f_, p_r_}, two_records(),
                                       /*deadline=*/100.0);
  ASSERT_TRUE(handle.has_value());
  EXPECT_EQ(plane_.expire_due(101.0), 1u);
  const PlaneReconciliation rec = plane_.reconcile();
  EXPECT_TRUE(rec.ok());
  EXPECT_EQ(rec.expired, 1u);
  EXPECT_EQ(rec.refunded_milli, 4 * p_f_ + p_r_);
  EXPECT_EQ(plane_.merged_balance(plane_.account_of(0)), from_credits(kInitialCredits));
}

TEST_F(PlaneTest, CrossPartitionReplayCaughtByReconciliation) {
  // Route pair 11 to its home partition honestly, then smuggle one of its
  // receipts into a *different* partition's engine by bypassing the routed
  // entry points. Each engine's redeemed-MAC map is partition-local, so the
  // smuggled copy is accepted there — only the merge reconciliation's
  // global-uniqueness pass can catch it, and must.
  const SettlementKey key = 11;
  const SettlementHandle home = settle_pair(key);
  const std::uint32_t other = (home.partition + 1) % kPartitions;

  // Open a sibling settlement with the same pair id and records directly on
  // the foreign partition and redeem the same receipt there.
  // lint-exempt(bank-partition): negative test drives a cross-partition replay
  BankPartition& foreign = plane_.partition(other);
  Wallet wallet(foreign.bank, plane_.account_of(0), rng::Stream(9).child("w"));
  auto coins = wallet.withdraw(4 * p_f_ + p_r_);
  ASSERT_TRUE(coins.has_value());
  auto escrow = foreign.bank.open_escrow(*coins);
  ASSERT_TRUE(escrow.has_value());
  // lint-exempt(bank-partition): negative test drives a cross-partition replay
  const SettlementId sid =
      foreign.engine.open(static_cast<PairId>(key), *escrow, SettlementTerms{p_f_, p_r_},
                          two_records(), plane_.account_of(0));
  const auto replayed =
      make_receipt(plane_.mac_key_of(1), static_cast<PairId>(key), 1, 1, 0, 2);
  // lint-exempt(bank-partition): negative test drives a cross-partition replay
  EXPECT_EQ(foreign.engine.submit_claim(sid, plane_.account_of(1), replayed),
            ClaimResult::kAccepted);
  // lint-exempt(bank-partition): negative test drives a cross-partition replay
  foreign.engine.close(sid);

  const PlaneReconciliation rec = plane_.reconcile();
  EXPECT_GE(rec.cross_partition_replays, 1u);
  EXPECT_FALSE(rec.ok());
}
