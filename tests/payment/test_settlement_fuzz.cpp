// Randomised settlement property test: for arbitrary generated path
// records, honest-claim subsets and junk claims, the settlement engine must
// conserve money exactly, never overpay a claimant, and never pay junk.
#include <gtest/gtest.h>

#include <map>

#include "payment/settlement.hpp"
#include "payment/token.hpp"

using namespace p2panon::payment;
using p2panon::net::NodeId;
namespace rng = p2panon::sim::rng;

namespace {

struct FuzzWorld {
  explicit FuzzWorld(std::uint64_t seed)
      : stream(seed), bank(stream.child("bank")), engine(bank) {
    for (NodeId n = 0; n < kNodes; ++n) {
      accounts.push_back(bank.open_account(n, from_credits(1.0e6), stream.next_u64()));
    }
  }

  static constexpr NodeId kNodes = 12;
  rng::Stream stream;
  Bank bank;
  SettlementEngine engine;
  std::vector<AccountId> accounts;
};

/// Generate a random set of path records from initiator 0 to responder 11.
std::vector<PathRecord> random_records(rng::Stream& s, std::size_t connections) {
  std::vector<PathRecord> records;
  for (std::uint32_t j = 1; j <= connections; ++j) {
    PathRecord rec;
    rec.conn_index = j;
    rec.entry = 0;
    rec.exit = 11;
    const auto hops = 1 + s.below(4);
    for (std::uint64_t h = 0; h < hops; ++h) {
      rec.forwarders.push_back(static_cast<NodeId>(1 + s.below(10)));  // nodes 1..10
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace

class SettlementFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SettlementFuzz, ConservationAndNoOverpay) {
  FuzzWorld w(GetParam());
  auto gen = w.stream.child("gen");

  const std::size_t connections = 1 + gen.below(8);
  const auto records = random_records(gen, connections);

  std::size_t total_instances = 0;
  std::map<NodeId, std::size_t> instances;
  for (const PathRecord& r : records) {
    total_instances += r.forwarders.size();
    for (NodeId f : r.forwarders) ++instances[f];
  }

  const Amount p_f = from_credits(1.0 + static_cast<double>(gen.below(100)));
  const Amount p_r = from_credits(static_cast<double>(gen.below(400)));
  const Amount committed = static_cast<Amount>(total_instances) * p_f + p_r;

  Wallet wallet(w.bank, w.accounts[0], w.stream.child("wallet"));
  auto coins = wallet.withdraw(committed);
  ASSERT_TRUE(coins.has_value());
  auto escrow = w.bank.open_escrow(*coins);
  ASSERT_TRUE(escrow.has_value());
  const AccountId refund = w.bank.open_pseudonymous_account();
  const SettlementId sid = w.engine.open(3, *escrow, {p_f, p_r}, records, refund);

  const Amount money_before = w.bank.total_money() + w.bank.outstanding_coin_value();

  // Claim a random subset of the honest receipts (some forwarders "forget").
  std::map<AccountId, Amount> max_due;
  for (const PathRecord& rec : records) {
    NodeId pred = rec.entry;
    for (std::size_t i = 0; i < rec.forwarders.size(); ++i) {
      const NodeId f = rec.forwarders[i];
      const NodeId succ = i + 1 < rec.forwarders.size() ? rec.forwarders[i + 1] : rec.exit;
      if (gen.bernoulli(0.8)) {
        const auto receipt = make_receipt(w.bank.account_mac_key(w.accounts[f]), 3,
                                          rec.conn_index, f, pred, succ);
        const auto res = w.engine.submit_claim(sid, w.accounts[f], receipt);
        EXPECT_TRUE(res == ClaimResult::kAccepted || res == ClaimResult::kDuplicate);
      }
      pred = f;
    }
  }
  // A burst of junk claims: wrong hops, forged MACs, stolen receipts.
  for (int junk = 0; junk < 20; ++junk) {
    const auto f = static_cast<NodeId>(1 + gen.below(10));
    ForwardReceipt r = make_receipt(w.bank.account_mac_key(w.accounts[f]), 3,
                                    static_cast<std::uint32_t>(1 + gen.below(10)), f,
                                    static_cast<NodeId>(gen.below(12)),
                                    static_cast<NodeId>(gen.below(12)));
    if (gen.bernoulli(0.3)) r.mac ^= 1;  // forge some
    const AccountId claimant = gen.bernoulli(0.2)
                                   ? w.accounts[1 + gen.below(10)]  // maybe stolen
                                   : w.accounts[f];
    const auto res = w.engine.submit_claim(sid, claimant, r);
    // Junk may coincidentally be a valid unclaimed hop — anything else must
    // be rejected with a specific reason.
    EXPECT_TRUE(res == ClaimResult::kAccepted || res == ClaimResult::kBadMac ||
                res == ClaimResult::kNotOnPath || res == ClaimResult::kDuplicate ||
                res == ClaimResult::kWrongClaimant);
  }

  const SettlementReport& report = w.engine.close(sid);

  // Exact conservation.
  EXPECT_EQ(report.paid_out + report.refunded, report.escrow_in);
  EXPECT_EQ(w.bank.total_money() + w.bank.outstanding_coin_value(), money_before);

  // No claimant is paid more than its full honest due (m*P_f + one largest
  // routing share).
  const Amount share_cap = p_r / static_cast<Amount>(report.forwarder_set_size) + 1;
  for (const auto& [acct, paid] : report.payouts) {
    const NodeId owner = w.bank.account_owner(acct);
    const auto it = instances.find(owner);
    ASSERT_NE(it, instances.end()) << "paid someone with zero recorded instances";
    EXPECT_LE(paid, static_cast<Amount>(it->second) * p_f + share_cap);
  }

  // Claims accepted never exceed recorded instances.
  EXPECT_LE(report.accepted_claims, total_instances);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SettlementFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));  // 25 random worlds
