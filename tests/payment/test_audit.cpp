#include "payment/audit.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "payment/bank.hpp"
#include "payment/settlement.hpp"
#include "payment/token.hpp"

using namespace p2panon::payment;
namespace rng = p2panon::sim::rng;

TEST(AuditLog, EmptyReplayIsEmpty) {
  AuditLog log;
  ReplayState state;
  EXPECT_TRUE(log.replay(state));
  EXPECT_TRUE(state.accounts.empty());
  EXPECT_EQ(state.total(), 0);
}

TEST(AuditLog, ManualJournalReplays) {
  AuditLog log;
  log.record(TxKind::kOpenAccount, 0, 0, 1000);
  log.record(TxKind::kOpenAccount, 1, 0, 0);
  log.record(TxKind::kWithdraw, 0, 0, 300);
  log.record(TxKind::kEscrowFund, 0, 0, 300);
  log.record(TxKind::kEscrowPay, 1, 0, 200);
  ReplayState state;
  ASSERT_TRUE(log.replay(state));
  EXPECT_EQ(state.accounts[0], 700);
  EXPECT_EQ(state.accounts[1], 200);
  EXPECT_EQ(state.escrows[0], 100);
  EXPECT_EQ(state.outstanding, 0);
  EXPECT_EQ(state.total(), 1000);
}

TEST(AuditLog, OverdraftRejected) {
  AuditLog log;
  log.record(TxKind::kOpenAccount, 0, 0, 10);
  log.record(TxKind::kWithdraw, 0, 0, 50);
  ReplayState state;
  EXPECT_FALSE(log.replay(state));
}

TEST(AuditLog, DepositBeyondOutstandingRejected) {
  AuditLog log;
  log.record(TxKind::kOpenAccount, 0, 0, 10);
  log.record(TxKind::kDeposit, 0, 0, 5);  // no coins outstanding
  ReplayState state;
  EXPECT_FALSE(log.replay(state));
}

TEST(AuditLog, NonDenseAccountIdsRejected) {
  AuditLog log;
  log.record(TxKind::kOpenAccount, 3, 0, 10);
  ReplayState state;
  EXPECT_FALSE(log.replay(state));
}

TEST(AuditLog, NegativeAmountRejected) {
  AuditLog log;
  log.record(TxKind::kOpenAccount, 0, 0, -1);
  ReplayState state;
  EXPECT_FALSE(log.replay(state));
}

TEST(AuditLog, PrintIsHumanReadable) {
  AuditLog log;
  log.record(TxKind::kOpenAccount, 0, 0, from_credits(5.0));
  std::ostringstream os;
  log.print(os);
  EXPECT_NE(os.str().find("open"), std::string::npos);
  EXPECT_NE(os.str().find("5"), std::string::npos);
}

TEST(AuditIntegration, BankJournalReplaysToLiveBalances) {
  // Drive a full settlement through an audited bank, then replay the
  // journal and compare against the live balances.
  AuditLog log;
  Bank bank(rng::Stream(77).child("bank"));
  bank.attach_audit(&log);
  SettlementEngine engine(bank);

  std::vector<AccountId> acct;
  for (p2panon::net::NodeId n = 0; n < 4; ++n) {
    acct.push_back(bank.open_account(n, from_credits(100.0), n + 1));
  }
  const AccountId refund = bank.open_pseudonymous_account();

  Wallet wallet(bank, acct[0], rng::Stream(78).child("w"));
  const Amount p_f = from_credits(5.0), p_r = from_credits(10.0);
  auto coins = wallet.withdraw(2 * p_f + p_r);
  ASSERT_TRUE(coins.has_value());
  auto escrow = bank.open_escrow(*coins);
  ASSERT_TRUE(escrow.has_value());

  std::vector<PathRecord> records{{1, 0, 3, {1, 2}}};
  const SettlementId sid = engine.open(1, *escrow, {p_f, p_r}, records, refund);
  engine.submit_claim(sid, acct[1],
                      make_receipt(bank.account_mac_key(acct[1]), 1, 1, 1, 0, 2));
  engine.submit_claim(sid, acct[2],
                      make_receipt(bank.account_mac_key(acct[2]), 1, 1, 2, 1, 3));
  engine.close(sid);

  ReplayState state;
  ASSERT_TRUE(log.replay(state));
  ASSERT_EQ(state.accounts.size(), bank.account_count());
  for (AccountId a = 0; a < state.accounts.size(); ++a) {
    EXPECT_EQ(state.accounts[a], bank.balance(a)) << "account " << a << " diverged";
  }
  EXPECT_EQ(state.outstanding, bank.outstanding_coin_value());
  EXPECT_EQ(state.total(), bank.total_money() + bank.outstanding_coin_value());
}

TEST(AuditIntegration, JournalNeverContainsCoinSerials) {
  // Unlinkability against the bank's own log: withdrawals journal amounts
  // only. (Structural check: the Transaction record has no serial field;
  // this test documents the property by construction.)
  AuditLog log;
  Bank bank(rng::Stream(79).child("bank"));
  bank.attach_audit(&log);
  const AccountId a = bank.open_account(0, from_credits(10.0), 1);
  Wallet wallet(bank, a, rng::Stream(80).child("w"));
  auto coins = wallet.withdraw(from_credits(3.0));
  ASSERT_TRUE(coins.has_value());
  for (const Transaction& tx : log.transactions()) {
    // Only kind/account/escrow/amount exist; amounts are denominations.
    if (tx.kind == TxKind::kWithdraw) {
      EXPECT_GT(tx.amount, 0);
    }
  }
  SUCCEED();
}
