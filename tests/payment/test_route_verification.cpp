#include "payment/route_verification.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace p2panon::payment;
using p2panon::net::NodeId;
using crypto::u64;

namespace {

/// Deterministic toy key registry.
struct Keys {
  u64 operator()(NodeId id) const { return 0x1000 + id * 7919; }
};

std::vector<NodeId> sample_path() { return {0, 3, 5, 2, 9}; }  // I=0, R=9

}  // namespace

TEST(RouteVerification, HonestChainVerifies) {
  const auto path = sample_path();
  const auto chain = build_chain(4, 2, path, Keys{});
  EXPECT_EQ(verify_chain(chain, 0, 9, Keys{}), ChainVerdict::kValid);
}

TEST(RouteVerification, ClaimedForwardersInPathOrder) {
  const auto chain = build_chain(4, 2, sample_path(), Keys{});
  EXPECT_EQ(chain.claimed_forwarders(), (std::vector<NodeId>{3, 5, 2}));
}

TEST(RouteVerification, DirectPathVerifies) {
  const std::vector<NodeId> direct{0, 9};
  const auto chain = build_chain(4, 1, direct, Keys{});
  EXPECT_TRUE(chain.links().empty());
  EXPECT_EQ(verify_chain(chain, 0, 9, Keys{}), ChainVerdict::kValid);
}

TEST(RouteVerification, UnseededChainRejected) {
  RouteVerificationChain chain(4, 1);
  EXPECT_EQ(verify_chain(chain, 0, 9, Keys{}), ChainVerdict::kNotSeeded);
}

TEST(RouteVerification, WrongKeyDetected) {
  const auto chain = build_chain(4, 2, sample_path(), Keys{});
  // The verifier's registry disagrees about node 5's key (e.g. node 5 used
  // a key it never registered with the bank).
  auto tampered_keys = [](NodeId id) { return id == 5 ? u64{0xBAD} : Keys{}(id); };
  EXPECT_EQ(verify_chain(chain, 0, 9, tampered_keys), ChainVerdict::kHeadMismatch);
}

TEST(RouteVerification, DroppedHopDetected) {
  const auto path = sample_path();
  auto chain = build_chain(4, 2, path, Keys{});
  // Adversary submits a chain claiming the shorter path 0 -> 3 -> 2 -> 9
  // but keeps the honest head.
  RouteVerificationChain forged(4, 2);
  forged.seed(Keys{}(9), 9);
  forged.extend(Keys{}(2), 2, 3, 9);
  forged.extend(Keys{}(3), 3, 0, 2);
  // Heads differ, so substituting the honest head is required for the
  // attack; the verifier recomputes and catches it either way.
  EXPECT_NE(forged.head(), chain.head());
  EXPECT_EQ(verify_chain(forged, 0, 9, Keys{}), ChainVerdict::kValid)
      << "a self-consistent shorter chain is valid in isolation";
  // ... which is exactly why the bank compares the chain's claimed hops
  // against the initiator's path record; here we verify the *mismatch* is
  // visible to that comparison.
  EXPECT_NE(forged.claimed_forwarders(), chain.claimed_forwarders());
}

TEST(RouteVerification, OutsiderCannotForgeReordering) {
  // An attacker without node 5's registered key tries to claim a reordered
  // path 0 -> 5 -> 3 -> 2 -> 9 (the honest one was 0 -> 3 -> 5 -> 2 -> 9).
  // Without the real key, the recomputed head cannot match.
  auto attacker_keys = [](NodeId id) { return id == 5 ? u64{0xE71BAD} : Keys{}(id); };
  RouteVerificationChain forged(4, 2);
  forged.seed(Keys{}(9), 9);
  forged.extend(attacker_keys(2), 2, 3, 9);
  forged.extend(attacker_keys(3), 3, 5, 2);
  forged.extend(attacker_keys(5), 5, 0, 3);
  EXPECT_EQ(verify_chain(forged, 0, 9, Keys{}), ChainVerdict::kHeadMismatch);
}

TEST(RouteVerification, CoalitionReorderingVisibleToRecordCrossCheck) {
  // Nodes holding their own keys CAN endorse a fictitious order — the chain
  // only authenticates that the listed nodes said those words. The defense
  // is the same as for dropped hops: the bank compares claimed_forwarders()
  // against the initiator's validated path record.
  const auto honest = build_chain(4, 2, sample_path(), Keys{});
  RouteVerificationChain coalition(4, 2);
  coalition.seed(Keys{}(9), 9);
  coalition.extend(Keys{}(2), 2, 3, 9);
  coalition.extend(Keys{}(3), 3, 5, 2);
  coalition.extend(Keys{}(5), 5, 0, 3);
  EXPECT_EQ(verify_chain(coalition, 0, 9, Keys{}), ChainVerdict::kValid);
  EXPECT_NE(coalition.claimed_forwarders(), honest.claimed_forwarders());
}

TEST(RouteVerification, BrokenInterlockRejected) {
  // Links that do not interlock (link j+1's successor != link j's
  // forwarder) are structurally invalid regardless of MACs.
  RouteVerificationChain broken(4, 2);
  broken.seed(Keys{}(9), 9);
  broken.extend(Keys{}(2), 2, 5, 9);
  broken.extend(Keys{}(3), 3, 0, 7);  // successor 7 != forwarder 2
  EXPECT_EQ(verify_chain(broken, 0, 9, Keys{}), ChainVerdict::kEndpointMismatch);
}

TEST(RouteVerification, WrongEndpointsDetected) {
  const auto chain = build_chain(4, 2, sample_path(), Keys{});
  EXPECT_EQ(verify_chain(chain, 1, 9, Keys{}), ChainVerdict::kEndpointMismatch);
  EXPECT_EQ(verify_chain(chain, 0, 8, Keys{}), ChainVerdict::kEndpointMismatch);
}

TEST(RouteVerification, HeadsDifferAcrossConnections) {
  const auto path = sample_path();
  const auto c1 = build_chain(4, 1, path, Keys{});
  const auto c2 = build_chain(4, 2, path, Keys{});
  const auto c3 = build_chain(5, 1, path, Keys{});
  EXPECT_NE(c1.head(), c2.head());
  EXPECT_NE(c1.head(), c3.head());
}

TEST(RouteVerification, RepeatedForwarderChainsVerify) {
  // Path with one node in two positions: 0 -> 3 -> 5 -> 3 -> 9.
  const std::vector<NodeId> path{0, 3, 5, 3, 9};
  const auto chain = build_chain(7, 1, path, Keys{});
  EXPECT_EQ(verify_chain(chain, 0, 9, Keys{}), ChainVerdict::kValid);
  EXPECT_EQ(chain.claimed_forwarders(), (std::vector<NodeId>{3, 5, 3}));
}
