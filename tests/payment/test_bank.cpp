#include "payment/bank.hpp"

#include <gtest/gtest.h>

#include "payment/token.hpp"

using namespace p2panon::payment;
namespace rng = p2panon::sim::rng;

namespace {

class BankTest : public ::testing::Test {
 protected:
  Bank bank{rng::Stream(1).child("bank")};
};

}  // namespace

TEST_F(BankTest, OpenAccountAndBalance) {
  const AccountId a = bank.open_account(0, 1000, 0xAA);
  EXPECT_EQ(bank.balance(a), 1000);
  EXPECT_EQ(bank.account_of(0), a);
  EXPECT_EQ(bank.account_owner(a), 0u);
  EXPECT_EQ(bank.account_mac_key(a), 0xAAu);
}

TEST_F(BankTest, PseudonymousAccountUnbound) {
  const AccountId a = bank.open_pseudonymous_account(50);
  EXPECT_EQ(bank.balance(a), 50);
  EXPECT_EQ(bank.account_owner(a), p2panon::net::kInvalidNode);
}

TEST_F(BankTest, AccountOfUnknownNode) {
  EXPECT_EQ(bank.account_of(77), kInvalidAccount);
}

TEST_F(BankTest, DenominationKeysStablePerDenomination) {
  const auto& k1 = bank.denomination_key(8);
  const auto& k2 = bank.denomination_key(8);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(bank.denomination_key(16).n, k1.n);
}

TEST(DecomposeAmount, PowersOfTwoSumExactly) {
  for (Amount v : {1LL, 2LL, 3LL, 1000LL, 123456789LL, 75000LL}) {
    Amount sum = 0;
    for (Amount d : decompose_amount(v)) {
      EXPECT_GT(d, 0);
      EXPECT_EQ(d & (d - 1), 0) << "not a power of two";
      sum += d;
    }
    EXPECT_EQ(sum, v);
  }
}

TEST(DecomposeAmount, ZeroIsEmpty) { EXPECT_TRUE(decompose_amount(0).empty()); }

TEST(Money, CreditConversionRoundTrips) {
  EXPECT_EQ(from_credits(75.0), 75000);
  EXPECT_DOUBLE_EQ(to_credits(75000), 75.0);
  EXPECT_EQ(from_credits(0.5), 500);
}

TEST(Money, SplitEvenlyConserves) {
  for (Amount total : {0LL, 1LL, 7LL, 1000LL, 99999LL}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 13u}) {
      auto shares = split_evenly(total, parts);
      ASSERT_EQ(shares.size(), parts);
      Amount sum = 0;
      for (Amount s : shares) sum += s;
      EXPECT_EQ(sum, total);
      // Near-equal: max - min <= 1.
      const auto [mn, mx] = std::minmax_element(shares.begin(), shares.end());
      EXPECT_LE(*mx - *mn, 1);
    }
  }
}

TEST(Money, SplitZeroParts) { EXPECT_TRUE(split_evenly(100, 0).empty()); }

TEST_F(BankTest, WalletWithdrawProducesVerifiableCoins) {
  const AccountId a = bank.open_account(0, from_credits(1000.0), 1);
  Wallet w(bank, a, rng::Stream(2).child("w"));
  auto coins = w.withdraw(from_credits(75.5));
  ASSERT_TRUE(coins.has_value());
  Amount total = 0;
  for (const Coin& c : *coins) {
    EXPECT_TRUE(c.verify(bank.denomination_key(c.denomination)));
    total += c.denomination;
  }
  EXPECT_EQ(total, from_credits(75.5));
  EXPECT_EQ(bank.balance(a), from_credits(1000.0 - 75.5));
  EXPECT_EQ(bank.outstanding_coin_value(), from_credits(75.5));
}

TEST_F(BankTest, WalletInsufficientFundsIsAtomic) {
  const AccountId a = bank.open_account(0, 100, 1);
  Wallet w(bank, a, rng::Stream(3).child("w"));
  auto coins = w.withdraw(1000);
  EXPECT_FALSE(coins.has_value());
  EXPECT_EQ(bank.balance(a), 100);  // nothing lost
  EXPECT_EQ(bank.outstanding_coin_value(), 0);
}

TEST_F(BankTest, DepositCreditsAndMarksSpent) {
  const AccountId a = bank.open_account(0, from_credits(100.0), 1);
  const AccountId b = bank.open_account(1, 0, 2);
  Wallet w(bank, a, rng::Stream(4).child("w"));
  auto coins = w.withdraw(from_credits(10.0));
  ASSERT_TRUE(coins.has_value());
  for (const Coin& c : *coins) {
    EXPECT_EQ(bank.deposit_coin(b, c), DepositResult::kOk);
  }
  EXPECT_EQ(bank.balance(b), from_credits(10.0));
  EXPECT_EQ(bank.outstanding_coin_value(), 0);
}

TEST_F(BankTest, DoubleSpendRejected) {
  const AccountId a = bank.open_account(0, from_credits(100.0), 1);
  const AccountId b = bank.open_account(1, 0, 2);
  Wallet w(bank, a, rng::Stream(5).child("w"));
  auto coins = w.withdraw(1);  // one coin of denom 1
  ASSERT_TRUE(coins.has_value());
  ASSERT_EQ(coins->size(), 1u);
  EXPECT_EQ(bank.deposit_coin(b, coins->front()), DepositResult::kOk);
  EXPECT_EQ(bank.deposit_coin(b, coins->front()), DepositResult::kDoubleSpend);
  EXPECT_EQ(bank.deposit_coin(a, coins->front()), DepositResult::kDoubleSpend);
}

TEST_F(BankTest, ForgedCoinRejected) {
  bank.open_account(0, 100, 1);
  const AccountId b = bank.open_account(1, 0, 2);
  [[maybe_unused]] const auto& key = bank.denomination_key(4);
  Coin fake;
  fake.serial = 123;
  fake.denomination = 4;
  fake.signature = 999;  // forged
  EXPECT_EQ(bank.deposit_coin(b, fake), DepositResult::kBadSignature);
  EXPECT_EQ(bank.balance(b), 0);
}

TEST_F(BankTest, UnknownDenominationRejected) {
  const AccountId b = bank.open_account(1, 0, 2);
  Coin c;
  c.serial = 5;
  c.denomination = 12345;  // never issued
  c.signature = 1;
  EXPECT_EQ(bank.deposit_coin(b, c), DepositResult::kUnknownDenomination);
}

TEST_F(BankTest, EscrowFundedByCoins) {
  const AccountId a = bank.open_account(0, from_credits(100.0), 1);
  Wallet w(bank, a, rng::Stream(6).child("w"));
  auto coins = w.withdraw(from_credits(20.0));
  ASSERT_TRUE(coins.has_value());
  auto escrow = bank.open_escrow(*coins);
  ASSERT_TRUE(escrow.has_value());
  EXPECT_EQ(bank.escrow_balance(*escrow), from_credits(20.0));
  EXPECT_EQ(bank.outstanding_coin_value(), 0);
}

TEST_F(BankTest, EscrowRejectsSpentCoins) {
  const AccountId a = bank.open_account(0, from_credits(100.0), 1);
  const AccountId b = bank.open_account(1, 0, 2);
  Wallet w(bank, a, rng::Stream(7).child("w"));
  auto coins = w.withdraw(1);
  ASSERT_TRUE(coins.has_value());
  EXPECT_EQ(bank.deposit_coin(b, coins->front()), DepositResult::kOk);
  EXPECT_FALSE(bank.open_escrow(*coins).has_value());
}

TEST_F(BankTest, EscrowRejectsDuplicateCoinInBatch) {
  const AccountId a = bank.open_account(0, from_credits(100.0), 1);
  Wallet w(bank, a, rng::Stream(8).child("w"));
  auto coins = w.withdraw(2);
  ASSERT_TRUE(coins.has_value());
  ASSERT_EQ(coins->size(), 1u);
  std::vector<Coin> batch{coins->front(), coins->front()};
  EXPECT_FALSE(bank.open_escrow(batch).has_value());
  // Rejection must not mark anything spent: a later honest use succeeds.
  auto escrow = bank.open_escrow(*coins);
  EXPECT_TRUE(escrow.has_value());
}

TEST_F(BankTest, EscrowPayTransfersAndChecksBalance) {
  const AccountId a = bank.open_account(0, from_credits(100.0), 1);
  const AccountId b = bank.open_account(1, 0, 2);
  Wallet w(bank, a, rng::Stream(9).child("w"));
  auto coins = w.withdraw(1000);
  auto escrow = bank.open_escrow(*coins);
  ASSERT_TRUE(escrow.has_value());
  EXPECT_TRUE(bank.escrow_pay(*escrow, b, 600));
  EXPECT_EQ(bank.balance(b), 600);
  EXPECT_FALSE(bank.escrow_pay(*escrow, b, 600));  // only 400 left
  EXPECT_EQ(bank.balance(b), 600);                 // unchanged on failure
  EXPECT_TRUE(bank.escrow_pay(*escrow, b, 400));
  EXPECT_EQ(bank.escrow_balance(*escrow), 0);
}

TEST_F(BankTest, MoneyConservationAcrossLifecycle) {
  const AccountId a = bank.open_account(0, from_credits(500.0), 1);
  const AccountId b = bank.open_account(1, from_credits(10.0), 2);
  const Amount before = bank.total_money() + bank.outstanding_coin_value();

  Wallet w(bank, a, rng::Stream(10).child("w"));
  auto coins = w.withdraw(from_credits(123.456));
  EXPECT_EQ(bank.total_money() + bank.outstanding_coin_value(), before);
  auto escrow = bank.open_escrow(*coins);
  EXPECT_EQ(bank.total_money() + bank.outstanding_coin_value(), before);
  bank.escrow_pay(*escrow, b, from_credits(100.0));
  EXPECT_EQ(bank.total_money() + bank.outstanding_coin_value(), before);
  bank.escrow_pay(*escrow, a, bank.escrow_balance(*escrow));
  EXPECT_EQ(bank.total_money() + bank.outstanding_coin_value(), before);
  EXPECT_EQ(bank.balance(b), from_credits(110.0));
}
