#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace p2panon::metrics;

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stderr_mean(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(TCritical, MatchesTablesAtCommonDf) {
  // Two-sided 95% critical values from standard t tables.
  EXPECT_NEAR(t_critical(0.95, 10), 2.228, 0.01);
  EXPECT_NEAR(t_critical(0.95, 30), 2.042, 0.01);
  EXPECT_NEAR(t_critical(0.95, 120), 1.980, 0.01);
}

TEST(TCritical, ApproachesNormalQuantile) {
  EXPECT_NEAR(t_critical(0.95, 100000), 1.960, 0.002);
  EXPECT_NEAR(t_critical(0.99, 100000), 2.576, 0.002);
}

TEST(TCritical, WiderConfidenceWiderValue) {
  EXPECT_GT(t_critical(0.99, 20), t_critical(0.95, 20));
  EXPECT_GT(t_critical(0.95, 20), t_critical(0.90, 20));
}

TEST(ConfidenceInterval, ContainsTrueMeanOfConstantData) {
  Accumulator a;
  for (int i = 0; i < 10; ++i) a.add(7.0);
  auto ci = confidence_interval(a);
  EXPECT_DOUBLE_EQ(ci.mean, 7.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(7.0));
}

TEST(ConfidenceInterval, ShrinksWithSamples) {
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(confidence_interval(small).half_width, confidence_interval(large).half_width);
}

TEST(ConfidenceInterval, SingleSampleHasZeroWidth) {
  Accumulator a;
  a.add(3.0);
  EXPECT_DOUBLE_EQ(confidence_interval(a).half_width, 0.0);
}

namespace {

Accumulator acc_of(std::initializer_list<double> xs) {
  Accumulator a;
  for (double x : xs) a.add(x);
  return a;
}

}  // namespace

TEST(WelchTTest, ClearlySeparatedMeansSignificant) {
  const auto a = acc_of({10.0, 11.0, 9.5, 10.5, 10.2});
  const auto b = acc_of({1.0, 1.2, 0.8, 1.1, 0.9});
  const auto r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_95);
  EXPECT_GT(r.t, 0.0);  // a.mean > b.mean
}

TEST(WelchTTest, OverlappingSamplesNotSignificant) {
  const auto a = acc_of({5.0, 7.0, 6.0, 4.0, 8.0});
  const auto b = acc_of({5.5, 6.5, 4.5, 7.5, 5.0});
  EXPECT_FALSE(welch_t_test(a, b).significant_95);
}

TEST(WelchTTest, DirectionOfT) {
  const auto lo = acc_of({1.0, 2.0, 1.5});
  const auto hi = acc_of({9.0, 10.0, 9.5});
  EXPECT_LT(welch_t_test(lo, hi).t, 0.0);
  EXPECT_GT(welch_t_test(hi, lo).t, 0.0);
}

TEST(WelchTTest, TooFewSamplesNeverSignificant) {
  const auto a = acc_of({1.0});
  const auto b = acc_of({100.0, 101.0});
  EXPECT_FALSE(welch_t_test(a, b).significant_95);
}

TEST(WelchTTest, ZeroVarianceHandled) {
  const auto same_a = acc_of({3.0, 3.0, 3.0});
  const auto same_b = acc_of({3.0, 3.0});
  EXPECT_FALSE(welch_t_test(same_a, same_b).significant_95);
  const auto other = acc_of({4.0, 4.0, 4.0});
  EXPECT_TRUE(welch_t_test(same_a, other).significant_95);
}

TEST(WelchTTest, DegreesOfFreedomReasonable) {
  const auto a = acc_of({1.0, 2.0, 3.0, 4.0, 5.0});
  const auto b = acc_of({2.0, 3.0, 4.0, 5.0, 6.0});
  const auto r = welch_t_test(a, b);
  // Equal variances and sizes: df ~ n1 + n2 - 2 = 8.
  EXPECT_NEAR(r.df, 8.0, 0.5);
  EXPECT_GT(r.critical_95, 2.0);
  EXPECT_LT(r.critical_95, 3.2);
}

TEST(EmpiricalDistribution, CdfMonotoneAndBounded) {
  EmpiricalDistribution d({3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0});
  double prev = 0.0;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const double p = d.cdf(x);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(9.0), 1.0);
}

TEST(EmpiricalDistribution, CdfCountsInclusive) {
  EmpiricalDistribution d({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(1.9999), 0.25);
}

TEST(EmpiricalDistribution, QuantileEndpoints) {
  EmpiricalDistribution d({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 20.0);
}

TEST(EmpiricalDistribution, QuantileInterpolates) {
  EmpiricalDistribution d({0.0, 10.0});
  EXPECT_NEAR(d.quantile(0.25), 2.5, 1e-12);
}

TEST(EmpiricalDistribution, AddThenQuery) {
  EmpiricalDistribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.mean(), 50.5, 1e-12);
  EXPECT_NEAR(d.cdf(50.0), 0.5, 1e-12);
}

TEST(EmpiricalDistribution, CdfSeriesShape) {
  EmpiricalDistribution d;
  for (int i = 0; i < 1000; ++i) d.add(static_cast<double>(i));
  auto series = d.cdf_series(11);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().x, 0.0);
  EXPECT_DOUBLE_EQ(series.back().x, 999.0);
  EXPECT_DOUBLE_EQ(series.back().p, 1.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].p, series[i - 1].p);
    EXPECT_GT(series[i].x, series[i - 1].x);
  }
}

TEST(EmpiricalDistribution, VarianceMatchesAccumulator) {
  Accumulator a;
  EmpiricalDistribution d;
  for (int i = 0; i < 50; ++i) {
    const double x = std::cos(i * 1.3) * 4;
    a.add(x);
    d.add(x);
  }
  EXPECT_NEAR(d.variance(), a.variance(), 1e-10);
}

TEST(Histogram, BinsAndDensity) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // [0,2)
  EXPECT_EQ(h.count(1), 2u);  // [2,4)
  EXPECT_EQ(h.count(4), 1u);  // [8,10)
  EXPECT_DOUBLE_EQ(h.density(0), 0.4);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

// ---------------------------------------------------------------------------
// Merge edge cases and the bit-exact Raw codec (checkpoint/resume relies on
// serialise -> deserialise -> merge equalling a direct merge bit-for-bit).
// ---------------------------------------------------------------------------

namespace {

void expect_raw_eq(const Accumulator& a, const Accumulator& b) {
  const auto ra = a.raw();
  const auto rb = b.raw();
  EXPECT_EQ(ra.n, rb.n);
  EXPECT_EQ(ra.mean_bits, rb.mean_bits);
  EXPECT_EQ(ra.m2_bits, rb.m2_bits);
  EXPECT_EQ(ra.min_bits, rb.min_bits);
  EXPECT_EQ(ra.max_bits, rb.max_bits);
}

}  // namespace

TEST(AccumulatorMerge, EmptyIntoEmptyStaysEmpty) {
  Accumulator a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(AccumulatorMerge, NonemptyIntoEmptyEqualsSource) {
  Accumulator src;
  for (double x : {-3.0, 7.0, 11.5}) src.add(x);
  Accumulator dst;
  dst.merge(src);
  expect_raw_eq(dst, src);
}

TEST(AccumulatorMerge, SingleSampleEachSideMatchesSequential) {
  Accumulator a, b, seq;
  a.add(2.0);
  b.add(8.0);
  seq.add(2.0);
  seq.add(8.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), seq.mean());
  EXPECT_DOUBLE_EQ(a.variance(), seq.variance());
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
}

TEST(AccumulatorMerge, SingleSampleConfidenceIntervalDegenerate) {
  Accumulator one;
  one.add(4.25);
  const auto ci = confidence_interval(one);
  EXPECT_DOUBLE_EQ(ci.mean, 4.25);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);  // n < 2: no spread estimate
  EXPECT_TRUE(ci.contains(4.25));
}

TEST(AccumulatorRaw, RoundTripIsBitExact) {
  Accumulator a;
  for (int i = 0; i < 23; ++i) a.add(std::sin(i * 0.9) * 1e3 + 1.0 / 3.0);
  const Accumulator back = Accumulator::from_raw(a.raw());
  expect_raw_eq(back, a);
  EXPECT_EQ(back.count(), a.count());
  EXPECT_DOUBLE_EQ(back.mean(), a.mean());
  EXPECT_DOUBLE_EQ(back.variance(), a.variance());
}

TEST(AccumulatorRaw, EmptyRoundTripStaysEmpty) {
  const Accumulator back = Accumulator::from_raw(Accumulator{}.raw());
  EXPECT_EQ(back.count(), 0u);
  EXPECT_DOUBLE_EQ(back.stderr_mean(), 0.0);
}

TEST(AccumulatorRaw, DeserialisedMergeEqualsDirectMergeBitForBit) {
  Accumulator left, right;
  for (int i = 0; i < 40; ++i) {
    const double x = std::cos(i * 0.31) * 7.0 + i * 0.01;
    (i % 3 == 0 ? left : right).add(x);
  }
  // Direct merge of the live accumulators...
  Accumulator direct = left;
  direct.merge(right);
  // ...vs merge after a serialise -> deserialise round trip of both sides.
  Accumulator thawed = Accumulator::from_raw(left.raw());
  thawed.merge(Accumulator::from_raw(right.raw()));
  expect_raw_eq(thawed, direct);
}

// ---------------------------------------------------------------------------
// Sequential-stopping arithmetic (DESIGN.md §3.12).
// ---------------------------------------------------------------------------

TEST(SequentialStopping, HoeffdingPlanMatchesClosedForm) {
  // n = ceil(R^2 ln(2/delta) / (2 eps^2)); R=1, eps=0.1, delta=0.05 -> 185.
  EXPECT_EQ(hoeffding_plan(1.0, 0.1, 0.05), 185u);
  // Quadratic in range and in 1/eps.
  EXPECT_EQ(hoeffding_plan(2.0, 0.1, 0.05), 738u);
  EXPECT_GT(hoeffding_plan(1.0, 0.01, 0.05), 50u * hoeffding_plan(1.0, 0.1, 0.05));
  // Tighter delta only grows the plan.
  EXPECT_GE(hoeffding_plan(1.0, 0.1, 0.01), hoeffding_plan(1.0, 0.1, 0.05));
}

TEST(SequentialStopping, AlphaSpendingTelescopesToAlpha) {
  EXPECT_DOUBLE_EQ(alpha_spend(0.05, 1), 0.025);  // alpha / (1*2)
  double total = 0.0;
  for (std::size_t k = 1; k <= 2000; ++k) total += alpha_spend(0.05, k);
  // sum_{k<=N} alpha/(k(k+1)) = alpha N/(N+1) -> alpha from below.
  EXPECT_LT(total, 0.05);
  EXPECT_NEAR(total, 0.05, 0.05 / 2000.0);
}

TEST(SequentialStopping, AnytimeIntervalWidensWithPeeksAndMetrics) {
  Accumulator acc;
  for (int i = 0; i < 30; ++i) acc.add(std::sin(i * 1.3));
  const double base = anytime_interval(acc, 0.05, 1, 1).half_width;
  EXPECT_GT(base, 0.0);
  // Later peeks spend less alpha; more simultaneous metrics split it further.
  EXPECT_GT(anytime_interval(acc, 0.05, 5, 1).half_width, base);
  EXPECT_GT(anytime_interval(acc, 0.05, 1, 4).half_width, base);
  // And it is never tighter than the plain 1-alpha t interval.
  EXPECT_GE(base, confidence_interval(acc, 0.95).half_width);
}

TEST(SequentialStopping, PassRateLowerBoundBehaviour) {
  // Too few trials: clamped to zero.
  EXPECT_DOUBLE_EQ(pass_rate_lower_bound(1, 1, 0.05), 0.0);
  // All-pass records tighten toward 1 as trials grow.
  const double at_100 = pass_rate_lower_bound(100, 100, 0.05);
  const double at_1000 = pass_rate_lower_bound(1000, 1000, 0.05);
  EXPECT_GT(at_1000, at_100);
  EXPECT_NEAR(at_1000, 1.0 - std::sqrt(std::log(20.0) / 2000.0), 1e-12);
  // Failures push the bound down by exactly the empirical gap.
  EXPECT_NEAR(pass_rate_lower_bound(900, 1000, 0.05), at_1000 - 0.1, 1e-12);
}
