#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace p2panon::metrics;

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stderr_mean(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(TCritical, MatchesTablesAtCommonDf) {
  // Two-sided 95% critical values from standard t tables.
  EXPECT_NEAR(t_critical(0.95, 10), 2.228, 0.01);
  EXPECT_NEAR(t_critical(0.95, 30), 2.042, 0.01);
  EXPECT_NEAR(t_critical(0.95, 120), 1.980, 0.01);
}

TEST(TCritical, ApproachesNormalQuantile) {
  EXPECT_NEAR(t_critical(0.95, 100000), 1.960, 0.002);
  EXPECT_NEAR(t_critical(0.99, 100000), 2.576, 0.002);
}

TEST(TCritical, WiderConfidenceWiderValue) {
  EXPECT_GT(t_critical(0.99, 20), t_critical(0.95, 20));
  EXPECT_GT(t_critical(0.95, 20), t_critical(0.90, 20));
}

TEST(ConfidenceInterval, ContainsTrueMeanOfConstantData) {
  Accumulator a;
  for (int i = 0; i < 10; ++i) a.add(7.0);
  auto ci = confidence_interval(a);
  EXPECT_DOUBLE_EQ(ci.mean, 7.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(7.0));
}

TEST(ConfidenceInterval, ShrinksWithSamples) {
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(confidence_interval(small).half_width, confidence_interval(large).half_width);
}

TEST(ConfidenceInterval, SingleSampleHasZeroWidth) {
  Accumulator a;
  a.add(3.0);
  EXPECT_DOUBLE_EQ(confidence_interval(a).half_width, 0.0);
}

namespace {

Accumulator acc_of(std::initializer_list<double> xs) {
  Accumulator a;
  for (double x : xs) a.add(x);
  return a;
}

}  // namespace

TEST(WelchTTest, ClearlySeparatedMeansSignificant) {
  const auto a = acc_of({10.0, 11.0, 9.5, 10.5, 10.2});
  const auto b = acc_of({1.0, 1.2, 0.8, 1.1, 0.9});
  const auto r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_95);
  EXPECT_GT(r.t, 0.0);  // a.mean > b.mean
}

TEST(WelchTTest, OverlappingSamplesNotSignificant) {
  const auto a = acc_of({5.0, 7.0, 6.0, 4.0, 8.0});
  const auto b = acc_of({5.5, 6.5, 4.5, 7.5, 5.0});
  EXPECT_FALSE(welch_t_test(a, b).significant_95);
}

TEST(WelchTTest, DirectionOfT) {
  const auto lo = acc_of({1.0, 2.0, 1.5});
  const auto hi = acc_of({9.0, 10.0, 9.5});
  EXPECT_LT(welch_t_test(lo, hi).t, 0.0);
  EXPECT_GT(welch_t_test(hi, lo).t, 0.0);
}

TEST(WelchTTest, TooFewSamplesNeverSignificant) {
  const auto a = acc_of({1.0});
  const auto b = acc_of({100.0, 101.0});
  EXPECT_FALSE(welch_t_test(a, b).significant_95);
}

TEST(WelchTTest, ZeroVarianceHandled) {
  const auto same_a = acc_of({3.0, 3.0, 3.0});
  const auto same_b = acc_of({3.0, 3.0});
  EXPECT_FALSE(welch_t_test(same_a, same_b).significant_95);
  const auto other = acc_of({4.0, 4.0, 4.0});
  EXPECT_TRUE(welch_t_test(same_a, other).significant_95);
}

TEST(WelchTTest, DegreesOfFreedomReasonable) {
  const auto a = acc_of({1.0, 2.0, 3.0, 4.0, 5.0});
  const auto b = acc_of({2.0, 3.0, 4.0, 5.0, 6.0});
  const auto r = welch_t_test(a, b);
  // Equal variances and sizes: df ~ n1 + n2 - 2 = 8.
  EXPECT_NEAR(r.df, 8.0, 0.5);
  EXPECT_GT(r.critical_95, 2.0);
  EXPECT_LT(r.critical_95, 3.2);
}

TEST(EmpiricalDistribution, CdfMonotoneAndBounded) {
  EmpiricalDistribution d({3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0});
  double prev = 0.0;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const double p = d.cdf(x);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(9.0), 1.0);
}

TEST(EmpiricalDistribution, CdfCountsInclusive) {
  EmpiricalDistribution d({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(1.9999), 0.25);
}

TEST(EmpiricalDistribution, QuantileEndpoints) {
  EmpiricalDistribution d({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 20.0);
}

TEST(EmpiricalDistribution, QuantileInterpolates) {
  EmpiricalDistribution d({0.0, 10.0});
  EXPECT_NEAR(d.quantile(0.25), 2.5, 1e-12);
}

TEST(EmpiricalDistribution, AddThenQuery) {
  EmpiricalDistribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.mean(), 50.5, 1e-12);
  EXPECT_NEAR(d.cdf(50.0), 0.5, 1e-12);
}

TEST(EmpiricalDistribution, CdfSeriesShape) {
  EmpiricalDistribution d;
  for (int i = 0; i < 1000; ++i) d.add(static_cast<double>(i));
  auto series = d.cdf_series(11);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().x, 0.0);
  EXPECT_DOUBLE_EQ(series.back().x, 999.0);
  EXPECT_DOUBLE_EQ(series.back().p, 1.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].p, series[i - 1].p);
    EXPECT_GT(series[i].x, series[i - 1].x);
  }
}

TEST(EmpiricalDistribution, VarianceMatchesAccumulator) {
  Accumulator a;
  EmpiricalDistribution d;
  for (int i = 0; i < 50; ++i) {
    const double x = std::cos(i * 1.3) * 4;
    a.add(x);
    d.add(x);
  }
  EXPECT_NEAR(d.variance(), a.variance(), 1e-10);
}

TEST(Histogram, BinsAndDensity) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // [0,2)
  EXPECT_EQ(h.count(1), 2u);  // [2,4)
  EXPECT_EQ(h.count(4), 1u);  // [8,10)
  EXPECT_DOUBLE_EQ(h.density(0), 0.4);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}
