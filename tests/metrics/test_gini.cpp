#include <gtest/gtest.h>

#include <vector>

#include "metrics/stats.hpp"

using p2panon::metrics::gini;

TEST(Gini, EqualSamplesAreZero) {
  std::vector<double> xs(10, 7.0);
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(Gini, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(gini(one), 0.0);
}

TEST(Gini, MaximallyConcentrated) {
  // One person has everything: G = (n-1)/n.
  std::vector<double> xs(10, 0.0);
  xs[3] = 100.0;
  EXPECT_NEAR(gini(xs), 0.9, 1e-12);
}

TEST(Gini, KnownTwoPersonSplit) {
  // (0, 1): G = 1/2 for n = 2.
  std::vector<double> xs{0.0, 1.0};
  EXPECT_NEAR(gini(xs), 0.5, 1e-12);
  // (1, 3): mean 2, G = |1-3|/(2n^2*mean) * n^2... = 0.25.
  std::vector<double> ys{1.0, 3.0};
  EXPECT_NEAR(gini(ys), 0.25, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> scaled{10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(gini(xs), gini(scaled), 1e-12);
}

TEST(Gini, OrderInvariant) {
  std::vector<double> a{5.0, 1.0, 3.0};
  std::vector<double> b{1.0, 3.0, 5.0};
  EXPECT_NEAR(gini(a), gini(b), 1e-12);
}

TEST(Gini, NegativeSamplesShifted) {
  // Payoffs can be negative (costs exceed benefits); shifting preserves a
  // meaningful [0, 1) coefficient.
  std::vector<double> xs{-1.0, 0.0, 1.0};
  const double g = gini(xs);
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, 1.0);
}

TEST(Gini, MoreSkewHigherCoefficient) {
  std::vector<double> mild{4.0, 5.0, 6.0};
  std::vector<double> wild{1.0, 1.0, 13.0};
  EXPECT_GT(gini(wild), gini(mild));
}
