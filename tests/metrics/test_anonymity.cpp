#include "metrics/anonymity.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace p2panon::metrics;

TEST(ShannonEntropy, UniformDistribution) {
  std::vector<double> p(8, 0.125);
  EXPECT_NEAR(shannon_entropy_bits(p), 3.0, 1e-12);
}

TEST(ShannonEntropy, DegenerateDistributionIsZero) {
  std::vector<double> p{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(shannon_entropy_bits(p), 0.0);
}

TEST(ShannonEntropy, UnnormalisedInputIsNormalised) {
  std::vector<double> p{2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(shannon_entropy_bits(p), 2.0, 1e-12);
}

TEST(ShannonEntropy, EmptyAndZeroAreZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({}), 0.0);
  std::vector<double> z{0.0, 0.0};
  EXPECT_DOUBLE_EQ(shannon_entropy_bits(z), 0.0);
}

TEST(ShannonEntropy, SkewLowersEntropy) {
  std::vector<double> uniform{0.25, 0.25, 0.25, 0.25};
  std::vector<double> skewed{0.7, 0.1, 0.1, 0.1};
  EXPECT_LT(shannon_entropy_bits(skewed), shannon_entropy_bits(uniform));
}

TEST(DegreeOfAnonymity, UniformIsOne) {
  std::vector<double> p(16, 1.0 / 16.0);
  EXPECT_NEAR(degree_of_anonymity(p), 1.0, 1e-12);
}

TEST(DegreeOfAnonymity, IdentifiedIsZero) {
  std::vector<double> p{0.0, 1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(degree_of_anonymity(p), 0.0);
}

TEST(DegreeOfAnonymity, SingleCandidateIsZero) {
  std::vector<double> p{1.0};
  EXPECT_DOUBLE_EQ(degree_of_anonymity(p), 0.0);
}

TEST(EffectiveSetSize, MatchesUniformSupport) {
  std::vector<double> p(10, 0.1);
  EXPECT_NEAR(effective_set_size(p), 10.0, 1e-9);
}

TEST(EffectiveSetSize, ShrinksWithSkew) {
  std::vector<double> skewed{0.9, 0.05, 0.05};
  EXPECT_LT(effective_set_size(skewed), 3.0);
  EXPECT_GE(effective_set_size(skewed), 1.0);
}

class AnonymityFunctionalForms : public ::testing::TestWithParam<AnonymityFunctional> {};

TEST_P(AnonymityFunctionalForms, StrictlyDecreasingInSetSize) {
  AnonymityValuation a;
  a.form = GetParam();
  a.scale = 10000.0;
  a.lambda = 20.0;
  double prev = a(0.0);
  for (double x = 1.0; x <= 15.0; x += 1.0) {
    const double v = a(x);
    EXPECT_LT(v, prev) << "form not decreasing at x=" << x;
    prev = v;
  }
}

TEST_P(AnonymityFunctionalForms, NonNegative) {
  AnonymityValuation a;
  a.form = GetParam();
  for (double x = 0.0; x <= 100.0; x += 5.0) EXPECT_GE(a(x), 0.0);
}

TEST_P(AnonymityFunctionalForms, PerfectAnonymityEqualsScale) {
  AnonymityValuation a;
  a.form = GetParam();
  a.scale = 1234.0;
  EXPECT_NEAR(a(0.0), 1234.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllForms, AnonymityFunctionalForms,
                         ::testing::Values(AnonymityFunctional::kExponentialDecay,
                                           AnonymityFunctional::kInverse,
                                           AnonymityFunctional::kLinearClamped));

TEST(InitiatorUtility, MatchesEquationTwo) {
  AnonymityValuation a;  // exponential decay, scale 10000, lambda 20
  const double u = initiator_utility(a, 10.0, 50.0, 100.0);
  EXPECT_NEAR(u, a(10.0) - 10.0 * 50.0 - 100.0, 1e-12);
}

TEST(InitiatorUtility, SmallerSetHigherUtility) {
  AnonymityValuation a;
  EXPECT_GT(initiator_utility(a, 4.0, 50.0, 100.0), initiator_utility(a, 12.0, 50.0, 100.0));
}
