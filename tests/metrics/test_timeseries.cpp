#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

using p2panon::metrics::TimeSeries;

namespace {

TimeSeries steps() {
  TimeSeries ts;
  ts.record(0.0, 10.0);
  ts.record(5.0, 20.0);
  ts.record(10.0, 15.0);
  return ts;
}

}  // namespace

TEST(TimeSeries, RecordsAndSummaries) {
  const TimeSeries ts = steps();
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.min_value(), 10.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_value(), 15.0);
}

TEST(TimeSeries, AtIsStepFunction) {
  const TimeSeries ts = steps();
  EXPECT_DOUBLE_EQ(ts.at(-1.0), 10.0);  // before first: first value
  EXPECT_DOUBLE_EQ(ts.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(4.999), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(5.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.at(7.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.at(100.0), 15.0);
}

TEST(TimeSeries, ResampleGridAndValues) {
  const TimeSeries ts = steps();
  const auto grid = ts.resample(0.0, 10.0, 11);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid[0].t, 0.0);
  EXPECT_DOUBLE_EQ(grid[10].t, 10.0);
  EXPECT_DOUBLE_EQ(grid[3].value, 10.0);   // t = 3
  EXPECT_DOUBLE_EQ(grid[7].value, 20.0);   // t = 7
  EXPECT_DOUBLE_EQ(grid[10].value, 15.0);  // t = 10
}

TEST(TimeSeries, TimeWeightedMean) {
  const TimeSeries ts = steps();
  // [0,5): 10; [5,10): 20 -> mean over [0,10] = 15.
  EXPECT_NEAR(ts.time_weighted_mean(0.0, 10.0), 15.0, 1e-12);
  // [0,20]: 10*5 + 20*5 + 15*10 = 300 -> 15.
  EXPECT_NEAR(ts.time_weighted_mean(0.0, 20.0), 15.0, 1e-12);
  // Window entirely inside one step.
  EXPECT_NEAR(ts.time_weighted_mean(6.0, 9.0), 20.0, 1e-12);
}

TEST(TimeSeries, EqualTimestampsAllowed) {
  TimeSeries ts;
  ts.record(1.0, 1.0);
  ts.record(1.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.at(1.0), 2.0);  // last write at a timestamp wins
}
