#!/usr/bin/env python3
"""Fixture-based regression tests for tools/analysis/determinism_analyzer.py.

Every ``// MUST-FLAG(Dx)`` annotation in tests/analysis/fixtures/*.cpp names
one line the analyzer must report under rule Dx; every unannotated line must
stay silent. The comparison is exact in both directions, so a rule that stops
firing AND a rule that starts over-reporting both fail the suite.

The builtin backend is always exercised. The libclang backend runs as a
second case when python3-clang + libclang are importable (as in CI); it must
produce the *same* finding set — the backends share scope rules and
classifiers by construction, and this test is what keeps them aligned.

Fixtures carry an ``// analyzer-fixture: path=...`` header that assigns each
file a virtual repo path, which is how scope rules (owner modules, bench
timing, the rng home) are exercised from the tests tree.

Runs under plain unittest (stdlib only): ``python3 test_determinism_analyzer.py``.
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
ANALYZER = REPO / "tools" / "analysis" / "determinism_analyzer.py"
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

MUST_FLAG_RE = re.compile(r"MUST-FLAG\((D\d)\)")


def expected_findings() -> set:
    exp = set()
    for f in sorted(FIXTURES.glob("*.cpp")):
        for lineno, line in enumerate(f.read_text().splitlines(), 1):
            m = MUST_FLAG_RE.search(line)
            if m:
                exp.add((m.group(1), f.name, lineno))
    return exp


def run_analyzer(backend: str):
    with tempfile.TemporaryDirectory() as td:
        out = pathlib.Path(td) / "report.json"
        proc = subprocess.run(
            [sys.executable, str(ANALYZER), "--repo", str(REPO),
             "--fixtures", str(FIXTURES), "--backend", backend,
             "--json", str(out), "--quiet"],
            capture_output=True, text=True, timeout=300,
        )
        report = json.loads(out.read_text()) if out.is_file() else None
        return proc, report


def libclang_available() -> bool:
    try:
        import clang.cindex  # type: ignore  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


class DeterminismAnalyzerFixtures(unittest.TestCase):
    maxDiff = None

    def _check_backend(self, backend: str) -> None:
        proc, report = run_analyzer(backend)
        self.assertIsNotNone(report, f"no JSON report produced:\n{proc.stderr}")
        self.assertEqual(report["backend"], backend,
                         f"requested backend not used:\n{proc.stderr}")
        got = {(f["rule"], f["file"], f["line"]) for f in report["findings"]}
        exp = expected_findings()
        self.assertTrue(exp, "fixture corpus has no MUST-FLAG annotations")
        missing = exp - got
        spurious = got - exp
        self.assertFalse(missing,
                         f"[{backend}] must-flag cases did not fire: {sorted(missing)}")
        self.assertFalse(spurious,
                         f"[{backend}] must-pass lines were flagged: {sorted(spurious)}")
        self.assertEqual(proc.returncode, 1,
                         "analyzer must exit 1 when findings exist")

    def test_builtin_backend(self) -> None:
        self._check_backend("builtin")

    def test_libclang_backend(self) -> None:
        if not libclang_available():
            self.skipTest("python3-clang / libclang not available in this container")
        self._check_backend("libclang")

    def test_every_rule_has_flag_and_pass_coverage(self) -> None:
        exp = expected_findings()
        rules_flagged = {r for r, _f, _l in exp}
        self.assertEqual(rules_flagged, {"D1", "D2", "D3", "D4"},
                         "each rule family needs at least one must-flag case")
        all_files = {p.name for p in FIXTURES.glob("*.cpp")}
        flagged_files = {f for _r, f, _l in exp}
        self.assertTrue(all_files - flagged_files,
                        "corpus needs pure must-pass files too")

    def test_suppression_hygiene(self) -> None:
        """Suppressions without justification and stale entries are findings."""
        sys.path.insert(0, str(ANALYZER.parent))
        try:
            import determinism_analyzer as da
        finally:
            sys.path.pop(0)
        with tempfile.TemporaryDirectory() as td:
            sup = pathlib.Path(td) / "suppressions.txt"
            sup.write_text(
                "# comment\n"
                "D1 src/core/foo.cpp:10 # justified: integer histogram fold\n"
                "D2 src/core/bar.cpp:20\n"          # missing justification
                "BOGUS src/core/baz.cpp # nope\n"   # unknown rule
            )
            sups, problems = da.load_suppressions(sup)
            self.assertEqual(len(sups), 1)
            self.assertEqual(len(problems), 2)
            kinds = "\n".join(p.message for p in problems)
            self.assertIn("no justification", kinds)
            self.assertIn("malformed", kinds)


if __name__ == "__main__":
    unittest.main(verbosity=2)
