#!/usr/bin/env python3
"""Regression tests for tools/lint/check_invariants.py (rules R1-R9).

Each test materialises a minimal synthetic repo tree in a tempdir containing
one violating site and one conforming site for a single rule, then runs the
linter with ``--rules Rx`` against that tree. This pins down both directions:
the rule keeps firing on the bad shape, and the documented escape hatches
(waiver comments, guard idioms) keep working on the good shape.

Stdlib-only; runs under plain unittest: ``python3 test_invariant_linter.py``.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import tempfile
import textwrap
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
LINTER = REPO / "tools" / "lint" / "check_invariants.py"

# R2 runs every configured guard and reports missing guard files, so synthetic
# trees must stub the full guarded set (empty files define no classes and
# therefore produce no findings of their own).
EPOCH_GUARD_FILES = (
    "src/core/history.hpp", "src/core/history.cpp",
    "src/net/probing.hpp", "src/net/probing.cpp",
    "src/core/suspicion.hpp", "src/core/suspicion.cpp",
    "src/net/sharded_probing.hpp", "src/net/sharded_probing.cpp",
    "src/core/shard_history.hpp", "src/core/shard_history.cpp",
)


def make_tree(files: dict) -> tempfile.TemporaryDirectory:
    td = tempfile.TemporaryDirectory()
    root = pathlib.Path(td.name)
    for rel, content in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(content))
    return td


def run_linter(root, rules: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), "--repo", str(root), "--rules", rules],
        capture_output=True, text=True, timeout=120,
    )


class InvariantLinterRules(unittest.TestCase):
    maxDiff = None

    def assert_findings(self, proc, tag: str, expected: int) -> None:
        lines = [ln for ln in proc.stdout.splitlines() if f"[{tag}]" in ln]
        self.assertEqual(
            len(lines), expected,
            f"expected {expected} [{tag}] finding(s), got:\n{proc.stdout}{proc.stderr}")
        self.assertEqual(proc.returncode, 1 if expected else 0, proc.stderr)

    # --- R1 -------------------------------------------------------------

    def test_r1_flags_entropy_and_honours_waiver(self) -> None:
        with make_tree({
            "src/core/bad.cpp": """\
                #include <random>
                #include <chrono>
                void f() {
                  std::random_device rd;
                  auto t = std::chrono::steady_clock::now();
                }
            """,
            "src/core/good.cpp": """\
                // prose mentioning rand() in a comment must not trip R1
                #include <chrono>
                void g() {
                  auto t = std::chrono::steady_clock::now();  // lint-allow(determinism): wall-time only feeds a log banner
                }
            """,
        }) as root:
            proc = run_linter(root, "R1")
            self.assert_findings(proc, "determinism", 2)
            self.assertIn("src/core/bad.cpp:4:", proc.stdout)
            self.assertIn("src/core/bad.cpp:5:", proc.stdout)

    def test_r1_ignores_out_of_scope_dirs(self) -> None:
        with make_tree({
            "tools/bench_timer.cpp": "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n",
        }) as root:
            self.assert_findings(run_linter(root, "R1"), "determinism", 0)

    # --- R2 -------------------------------------------------------------

    def test_r2_flags_unbumped_epoch_mutation(self) -> None:
        files = {rel: "" for rel in EPOCH_GUARD_FILES}
        files["src/core/history.cpp"] = """\
            #include "core/history.hpp"
            void HistoryProfile::record(int v) {
              ring_[head_] = v;        // mutates guarded state, no epoch bump
            }
            void HistoryProfile::reset() {
              head_ = 0;
              ++epoch_;                // conforming: bumps the monotone epoch
            }
            // lint-exempt(epoch): scratch mirror, not published to caches
            void HistoryProfile::mirror(int v) {
              ring_[0] = v;
            }
        """
        with make_tree(files) as root:
            proc = run_linter(root, "R2")
            self.assert_findings(proc, "epoch", 1)
            self.assertIn("HistoryProfile::record", proc.stdout)

    def test_r2_reports_missing_guard_files(self) -> None:
        with make_tree({"src/core/history.hpp": ""}) as root:
            proc = run_linter(root, "R2")
            self.assertEqual(proc.returncode, 1)
            self.assertIn("guarded file missing", proc.stdout)

    # --- R3 -------------------------------------------------------------

    def test_r3_flags_tracked_build_artifacts(self) -> None:
        with make_tree({"build/CMakeCache.txt": "# stale\n",
                        "src/a.cpp": "int x;\n"}) as root:
            subprocess.run(["git", "-C", str(root), "init", "-q"], check=True)
            subprocess.run(["git", "-C", str(root), "add", "-f", "."], check=True)
            proc = run_linter(root, "R3")
            self.assert_findings(proc, "tracked-artifact", 1)
            self.assertIn("build/CMakeCache.txt", proc.stdout)

    def test_r3_clean_outside_git(self) -> None:
        with make_tree({"build/CMakeCache.txt": "# not tracked anywhere\n"}) as root:
            self.assert_findings(run_linter(root, "R3"), "tracked-artifact", 0)

    # --- R4 -------------------------------------------------------------

    def test_r4_flags_unguarded_pending_lambda(self) -> None:
        with make_tree({
            "src/net/conn.cpp": """\
                #include <memory>
                struct Pending { bool finished = false; };
                struct Conn {
                  std::shared_ptr<Pending> p;
                  void on_timer();
                  void arm();
                  void schedule_in(double, void*);
                };
                void Conn::on_timer() {
                  if (p->finished) return;
                }
                void Conn::arm() {
                  schedule_in(1.0, [p = p] { p->finished = true; });   // guarded inline
                  schedule_in(2.0, [p = p] { on_timer(); });           // guarded callee
                  schedule_in(3.0, [p = p] { p->finished = false; p = nullptr; });
                  schedule_in(4.0, [p = p] { delete p.get(); });       // unguarded
                }
            """,
        }) as root:
            proc = run_linter(root, "R4")
            self.assert_findings(proc, "finished-guard", 1)
            self.assertIn("src/net/conn.cpp:16:", proc.stdout)

    # --- R5 -------------------------------------------------------------

    def test_r5_flags_unguarded_state_transition(self) -> None:
        with make_tree({
            "src/payment/settlement.cpp": """\
                struct S { int state = 0; };
                struct SettlementEngine {
                  void close(S& s);
                  void expire(S& s);
                  bool is_terminal(int) const;
                };
                void SettlementEngine::close(S& s) {
                  if (is_terminal(s.state)) return;
                  s.state = 2;           // conforming: first-wins guarded
                }
                void SettlementEngine::expire(S& s) {
                  s.state = 3;           // unguarded re-terminalisation
                }
            """,
        }) as root:
            proc = run_linter(root, "R5")
            self.assert_findings(proc, "settlement-state", 1)
            self.assertIn("SettlementEngine::expire", proc.stdout)

    # --- R6 -------------------------------------------------------------

    def test_r6_flags_direct_cross_shard_schedule(self) -> None:
        with make_tree({
            "src/model.cpp": """\
                struct Sim { void schedule_in(double, void*); };
                Sim& shard(unsigned);
                void bad(unsigned target) {
                  shard(target).schedule_in(1.0, nullptr);
                }
                void affirmed(unsigned self) {
                  // lint-exempt(cross-shard): self is this shard's own index by construction
                  shard(self).schedule_in(1.0, nullptr);
                }
            """,
        }) as root:
            proc = run_linter(root, "R6")
            self.assert_findings(proc, "cross-shard", 1)
            self.assertIn("src/model.cpp:4:", proc.stdout)

    # --- R7 -------------------------------------------------------------

    def test_r7_flags_direct_bench_artifact_ofstream(self) -> None:
        with make_tree({
            "bench/report.cpp": """\
                #include <fstream>
                void write_report() {
                  std::ofstream out("BENCH_report.json");
                  out << "{}";
                }
            """,
        }) as root:
            proc = run_linter(root, "R7")
            self.assert_findings(proc, "atomic-write", 1)
            self.assertIn("bench/report.cpp:3:", proc.stdout)

    def test_r7_honours_exemption_and_ignores_unrelated_streams(self) -> None:
        with make_tree({
            "src/harness/writer.cpp": """\
                #include <fstream>
                bool atomic_write(const char* ckpt_path) {
                  // lint-exempt(atomic-write): this IS the atomic helper's temp write leg
                  std::ofstream out(ckpt_path);
                  return bool(out);
                }
            """,
            "src/harness/log.cpp": """\
                #include <fstream>
                void append_log() {
                  std::ofstream out("debug.log");  // not a results artifact
                  out << "hello";
                }
            """,
        }) as root:
            self.assert_findings(run_linter(root, "R7"), "atomic-write", 0)

    def test_r7_comment_mentions_do_not_trip_the_context_match(self) -> None:
        with make_tree({
            "examples/notes.cpp": """\
                #include <fstream>
                // This log sits next to prose about the checkpoint design and the
                // BENCH_sweep.json artifact, but writes neither.
                void trace() {
                  std::ofstream out("trace.txt");
                  out << "x";
                }
            """,
        }) as root:
            self.assert_findings(run_linter(root, "R7"), "atomic-write", 0)

    # --- R8 -------------------------------------------------------------

    def test_r8_flags_direct_partition_mutation(self) -> None:
        with make_tree({
            "src/model.cpp": """\
                struct Engine { void submit_claim(int); };
                struct Bank { void transfer(int, int, long); };
                struct Part { Engine engine; Bank bank; };
                struct Plane {
                  Part& partition(unsigned);
                  const Part& partition_view(unsigned) const;
                };
                void bad(Plane& plane) {
                  plane.partition(2).engine.submit_claim(7);
                  plane.partition(0).bank.transfer(1, 2, 100);
                }
                void affirmed(Plane& plane) {
                  // lint-exempt(bank-partition): negative test drives a replay
                  plane.partition(1).engine.submit_claim(7);
                }
                void reads(const Plane& plane) {
                  (void)plane.partition_view(2).engine;  // routed read accessor
                }
            """,
        }) as root:
            proc = run_linter(root, "R8")
            self.assert_findings(proc, "bank-partition", 2)
            self.assertIn("src/model.cpp:9:", proc.stdout)
            self.assertIn("src/model.cpp:10:", proc.stdout)

    def test_r8_ignores_tests_dir_and_comment_mentions(self) -> None:
        with make_tree({
            "tests/payment/test_replay.cpp": """\
                struct Engine { void submit_claim(int); };
                struct Part { Engine engine; };
                Part& partition(unsigned);
                void drive() { partition(1).engine.submit_claim(9); }
            """,
            "src/notes.cpp": """\
                // prose: partition(b).engine.submit_claim(...) is forbidden here
                int x;
            """,
        }) as root:
            self.assert_findings(run_linter(root, "R8"), "bank-partition", 0)

    # --- R9 -------------------------------------------------------------

    def test_r9_flags_raw_sockets_outside_transport(self) -> None:
        with make_tree({
            "examples/side_channel.cpp": """\
                #include <sys/socket.h>
                int bad() {
                  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
                  ::send(fd, "x", 1, 0);
                  return fd;
                }
                void fine() {
                  auto f = std::bind(&bad);       // std::bind is not ::bind
                  transport::connect(1, 2);       // qualified name, not a syscall
                }
                int affirmed(int fd, char* buf) {
                  // lint-exempt(transport): hostile-peer fixture reads the raw FIN
                  return ::recv(fd, buf, 1, 0);
                }
            """,
            "src/transport/tcp_impl.cpp": """\
                #include <sys/socket.h>
                int owner() { return ::socket(AF_INET, SOCK_STREAM, 0); }
            """,
        }) as root:
            proc = run_linter(root, "R9")
            self.assert_findings(proc, "raw-socket", 2)
            self.assertIn("examples/side_channel.cpp:3:", proc.stdout)
            self.assertIn("examples/side_channel.cpp:4:", proc.stdout)

    def test_r9_waiver_requires_a_reason(self) -> None:
        with make_tree({
            "tests/net/test_probe.cpp": """\
                // lint-exempt(transport):
                int fd = ::socket(0, 0, 0);
            """,
        }) as root:
            self.assert_findings(run_linter(root, "R9"), "raw-socket", 1)

    # --- CLI ------------------------------------------------------------

    def test_rules_flag_rejects_unknown_ids(self) -> None:
        with make_tree({}) as root:
            proc = run_linter(root, "R99")
            self.assertEqual(proc.returncode, 2)
            self.assertIn("unknown rule id", proc.stderr)

    def test_rule_selection_is_isolated(self) -> None:
        """An R1 violation must not surface when only R6 is requested."""
        with make_tree({
            "src/core/bad.cpp": "#include <random>\nstd::random_device rd;\n",
        }) as root:
            proc = run_linter(root, "R6")
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
