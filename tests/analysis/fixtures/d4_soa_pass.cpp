// analyzer-fixture: path=src/harness/fixture_d4_pass.cpp
// D4 must-pass: column writes are legal when the function derives shard
// ownership via shard_of(...) before writing, when the write runs inside a
// window-barrier callback, or when the site only reads.
#include <cstdint>
#include <functional>
#include <vector>

namespace fixture {

struct NodeStateSoA {
  std::vector<std::uint8_t> online;
  std::vector<std::uint64_t> leave_epoch;
};

struct Partition {
  std::uint32_t shard_of(std::uint32_t id) const { return id % 4; }
};

struct LocalSim {
  void schedule_in(double, void (*)()) {}
};

class ShardedModel {
 public:
  void owned_leave(std::uint32_t id) {
    const std::uint32_t s = partition_.shard_of(id);
    (void)s;
    state_.online[id] = 0;
    ++state_.leave_epoch[id];
  }

  void merge_at_barrier() {
    add_barrier_hook([this] { state_.online[0] = 1; });
  }

  void reschedule_owned(std::uint32_t id) {
    const std::uint32_t s = partition_.shard_of(id);
    shard(s).schedule_in(1.0, nullptr);
  }

  [[nodiscard]] bool is_up(std::uint32_t id) const { return state_.online[id] != 0; }

 private:
  void add_barrier_hook(std::function<void()> hook) { hooks_.push_back(std::move(hook)); }
  LocalSim& shard(std::uint32_t);
  Partition partition_;
  NodeStateSoA state_;
  std::vector<std::function<void()>> hooks_;
};

}  // namespace fixture
