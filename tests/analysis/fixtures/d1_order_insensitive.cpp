// analyzer-fixture: path=src/core/fixture_d1_pass.cpp
// D1 must-pass corpus: iterating an unordered container is fine when the
// fold is commutative (sums, counters, max), when the loop re-keys into
// another associative container, or when collected keys are sorted before
// use (the collect-then-sort idiom settlement payouts rely on).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class Tally {
 public:
  std::uint64_t sum_scores() const {
    std::uint64_t total = 0;
    for (const auto& [id, score] : scores_) {
      (void)id;
      total += static_cast<std::uint64_t>(score);
    }
    return total;
  }

  int max_score() const {
    int best = 0;
    for (const auto& [id, score] : scores_) {
      (void)id;
      best = std::max(best, score);
    }
    return best;
  }

  std::vector<int> sorted_ids() const {
    std::vector<int> ids;
    ids.reserve(members_.size());
    for (int id : members_) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  std::map<int, int> rekeyed() const {
    std::map<int, int> out;
    for (const auto& [id, score] : scores_) {
      out[id] = score;
    }
    return out;
  }

  std::size_t count_above(int limit) const {
    std::size_t n = 0;
    for (const auto& [id, score] : scores_) {
      (void)id;
      if (score > limit) ++n;
    }
    return n;
  }

 private:
  std::unordered_set<int> members_;
  std::unordered_map<int, int> scores_;
};

}  // namespace fixture
