// analyzer-fixture: path=src/core/fixture_d3_pass.cpp
// D3 must-pass: a <random> adaptor is fine when the enclosing function takes
// a sim::rng::Stream& — every draw then traces to the seeded stream tree.
#include <random>

namespace sim::rng {
struct Stream {
  using result_type = unsigned long long;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return 4; }
};
}  // namespace sim::rng

namespace fixture {

inline double disciplined_draw(sim::rng::Stream& stream) {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(stream);
}

}  // namespace fixture
