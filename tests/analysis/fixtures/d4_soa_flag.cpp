// analyzer-fixture: path=src/harness/fixture_d4_flag.cpp
// D4 must-flag corpus: writes to NodeStateSoA columns from a method that
// neither derives shard ownership (shard_of) nor runs in a window-barrier
// callback, plus a shard(x).schedule_* whose target shard is underived.
#include <cstdint>
#include <vector>

namespace fixture {

struct Tracker {
  void on_join(double t) { last = t; }
  void on_leave(double t) { last = t; }
  double last = 0.0;
};

struct NodeStateSoA {
  std::vector<std::uint8_t> online;
  std::vector<std::uint64_t> leave_epoch;
  std::vector<Tracker> tracker;
};

struct LocalSim {
  void schedule_in(double, void (*)()) {}
};

class RogueStrategy {
 public:
  void knock_offline(std::uint32_t id) {
    state_.online[id] = 0;             // MUST-FLAG(D4)
    ++state_.leave_epoch[id];          // MUST-FLAG(D4)
    state_.tracker[id].on_leave(0.0);  // MUST-FLAG(D4)
  }

  void reschedule(std::uint32_t target) {
    shard(target).schedule_in(1.0, nullptr);  // MUST-FLAG(D4)
  }

 private:
  LocalSim& shard(std::uint32_t);
  NodeStateSoA state_;
};

}  // namespace fixture
