// analyzer-fixture: path=src/core/fixture_d2_flag.cpp
// D2 must-flag corpus: ambient entropy, wall/monotonic clocks in model code,
// thread identity, and keying/hashing by raw pointer value.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Peer {
  int id = 0;
};

inline std::uint64_t ambient_seed() {
  std::random_device rd;  // MUST-FLAG(D2)
  return rd();
}

inline bool wall_clock_decision() {
  const auto mono = std::chrono::steady_clock::now();  // MUST-FLAG(D2)
  const auto wall = std::chrono::system_clock::now();  // MUST-FLAG(D2)
  return mono.time_since_epoch() < wall.time_since_epoch();
}

inline std::size_t thread_keyed_bucket() {
  const auto tid = std::this_thread::get_id();  // MUST-FLAG(D2)
  return std::hash<std::thread::id>{}(tid) % 7;
}

struct PointerKeyed {
  std::unordered_map<Peer*, int> scores;    // MUST-FLAG(D2)
  std::map<Peer*, int> ordered_by_address;  // MUST-FLAG(D2)
  std::unordered_set<const Peer*> seen;     // MUST-FLAG(D2)
};

inline std::size_t hash_by_address(Peer* p) {
  return std::hash<Peer*>{}(p);  // MUST-FLAG(D2)
}

inline std::uint64_t key_from_address(Peer* p) {
  return reinterpret_cast<std::uintptr_t>(p);  // MUST-FLAG(D2)
}

}  // namespace fixture
