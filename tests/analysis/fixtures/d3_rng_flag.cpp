// analyzer-fixture: path=src/core/fixture_d3_flag.cpp
// D3 must-flag corpus: raw engine / distribution construction outside
// src/sim/rng.* in functions that take no sim::rng::Stream& parameter —
// draws here cannot be traced to a seeded child stream.
#include <cstdint>
#include <random>

namespace fixture {

inline double undisciplined_draw(std::uint64_t seed) {
  std::mt19937_64 gen(seed);                              // MUST-FLAG(D3)
  std::uniform_real_distribution<double> dist(0.0, 1.0);  // MUST-FLAG(D3)
  return dist(gen);
}

struct NoisyAgent {
  std::minstd_rand engine;  // MUST-FLAG(D3)
};

}  // namespace fixture
