// analyzer-fixture: path=src/core/fixture_d1_flag.cpp
// D1 must-flag corpus: every annotated loop iterates an unordered container
// with an order-sensitive body, so its observable result depends on the
// stdlib's hash-bucket order.
#include <cstdint>
#include <iostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Digest {
  std::uint64_t h = 0;
  void add(std::uint64_t v) { h = h * 31 + v; }
};

class Model {
 public:
  std::vector<int> order_of_arrival() const {
    std::vector<int> out;
    for (int id : members_) {  // MUST-FLAG(D1)
      out.push_back(id);
    }
    return out;
  }

  void print_members() const {
    for (int id : members_) {  // MUST-FLAG(D1)
      std::cout << id << "\n";
    }
  }

  int find_first_above(int limit) const {
    for (const auto& [id, score] : scores_) {  // MUST-FLAG(D1)
      if (score > limit) return id;
    }
    return -1;
  }

  void fold_into_digest(Digest& d) const {
    for (const auto& [id, score] : scores_) {  // MUST-FLAG(D1)
      d.add(static_cast<std::uint64_t>(id) * 1000003ULL + static_cast<std::uint64_t>(score));
    }
  }

  void remember_last_seen() {
    for (int id : members_) {  // MUST-FLAG(D1)
      last_seen_ = id;
    }
  }

  std::vector<int> iterator_collect() const {
    std::vector<int> out;
    for (auto it = members_.begin(); it != members_.end(); ++it) {  // MUST-FLAG(D1)
      out.push_back(*it);
    }
    return out;
  }

 private:
  std::unordered_set<int> members_;
  std::unordered_map<int, int> scores_;
  int last_seen_ = 0;
};

}  // namespace fixture
