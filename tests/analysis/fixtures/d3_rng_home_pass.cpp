// analyzer-fixture: path=src/sim/rng.cpp
// D3 must-pass: src/sim/rng.* is the one module allowed to own raw engines —
// it is where the seeded Stream abstraction itself lives.
#include <random>

namespace fixture {

inline unsigned long reference_engine_draw(unsigned long seed) {
  std::mt19937 gen(seed);
  return gen();
}

}  // namespace fixture
