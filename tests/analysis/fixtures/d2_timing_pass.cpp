// analyzer-fixture: path=bench/fixture_d2_timing.cpp
// D2 must-pass: clocks in bench/ time the host machine (events/sec, wall
// budget), never the simulation — that is the sanctioned use.
#include <chrono>
#include <unordered_map>

namespace fixture {

struct Peer {
  int id = 0;
};

inline double bench_elapsed_ms() {
  const auto start = std::chrono::steady_clock::now();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

// Pointer *values* are the hazard, not pointers per se: an id-keyed map with
// a pointer mapped_type is deterministic.
struct IdKeyed {
  std::unordered_map<int, Peer*> by_id;
};

}  // namespace fixture
