// analyzer-fixture: path=src/parallel/fixture_d2_pool.cpp
// D2 must-pass: the thread-pool plumbing may read monotonic time (idle
// wait bookkeeping); it never feeds model state.
#include <chrono>

namespace fixture {

inline long pool_idle_ns() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
}

}  // namespace fixture
