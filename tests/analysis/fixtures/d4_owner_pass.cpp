// analyzer-fixture: path=src/net/overlay.cpp
// D4 must-pass: the overlay IS the owning module for NodeStateSoA — its
// session bookkeeping writes columns directly by design.
#include <cstdint>
#include <vector>

namespace fixture {

struct NodeStateSoA {
  std::vector<std::uint8_t> online;
  std::vector<std::uint64_t> leave_epoch;
};

class Overlay {
 public:
  void leave(std::uint32_t id) {
    state_.online[id] = 0;
    ++state_.leave_epoch[id];
  }

 private:
  NodeStateSoA state_;
};

}  // namespace fixture
