// Game-theory example: the paper's §2.4 analysis, executable.
//
// 1. Checks Propositions 2 and 3 on the paper's own parameters.
// 2. Solves the L-stage path-formation game of Utility Model II by backward
//    induction on a small overlay and verifies subgame perfection.
// 3. Builds the forwarding meta-game ({Abstain, Random, NonRandom} per peer)
//    and shows best-response dynamics converging to the all-NonRandom Nash
//    equilibrium the incentive mechanism is designed to induce.
//
//   ./game_analysis
#include <iostream>

#include "core/game.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::core::game;

  // ------------------------------------------------------------------ 1.
  std::cout << "== Propositions 2 and 3 (paper parameters) ==\n";
  const double c_p = 10.0, c_t = 1.0, L = 4.0;
  const std::size_t N = 40, k = 20;
  const double threshold = prop2_participation_threshold(c_p, c_t, N, L, k);
  std::cout << "Prop 2: participation threshold P_f > C_p*N/(L*k) + C_t = " << threshold
            << "\n        paper draws P_f from U[50, 100]  ->  participation induced: "
            << (prop2_induces_participation(50.0, c_p, c_t, N, L, k) ? "yes" : "no") << '\n';
  std::cout << "Prop 3: forwarding dominant iff P_f > C_p + C_t = " << (c_p + c_t)
            << "\n        P_f = 50 dominant: " << (prop3_forwarding_dominant(50.0, c_p, c_t) ? "yes" : "no")
            << "; P_f = 9 dominant: " << (prop3_forwarding_dominant(9.0, c_p, c_t) ? "yes" : "no")
            << "\n\n";

  // ------------------------------------------------------------------ 2.
  std::cout << "== SPNE of the L-stage path game (Utility Model II) ==\n";
  // A 6-node world: responder 5; a "good spine" 0-1-2-5 with high-quality
  // forward edges and some noisy side edges.
  PathGameSpec spec;
  spec.node_count = 6;
  spec.responder = 5;
  spec.candidates = [](net::NodeId v) -> std::vector<net::NodeId> {
    switch (v) {
      case 0: return {1, 3};
      case 1: return {2, 4};
      case 2: return {1, 3};
      case 3: return {4};
      case 4: return {3};
      default: return {};
    }
  };
  spec.edge_quality = [](net::NodeId i, net::NodeId j) {
    // Spine edges 0->1->2 are strong; side edges weak; back edges worthless.
    if (j <= i) return 0.0;
    if ((i == 0 && j == 1) || (i == 1 && j == 2)) return 0.9;
    return 0.2;
  };
  spec.forwarding_benefit = 75.0;
  spec.routing_benefit = 150.0;
  spec.cost = [](net::NodeId, net::NodeId) { return 11.0; };

  BackwardInductionSolver solver(spec, /*stages=*/3);
  std::cout << "subgame perfection verified: "
            << (solver.verify_subgame_perfection() ? "yes" : "NO") << '\n';
  const auto path = solver.equilibrium_path(0);
  std::cout << "equilibrium path from node 0:";
  for (net::NodeId v : path) std::cout << ' ' << v;
  std::cout << "\nper-stage decisions for node 0:\n";
  for (std::uint32_t s = 0; s <= 3; ++s) {
    const StageDecision& d = solver.decision(0, s);
    std::cout << "  stages left " << s << ": forward to " << d.next
              << " (onward path quality " << d.onward_quality << ", utility " << d.utility
              << ")\n";
  }
  std::cout << '\n';

  // ------------------------------------------------------------------ 3.
  std::cout << "== Forwarding meta-game: {Abstain, Random, NonRandom} per peer ==\n";
  MetaGameParams params;  // paper-flavoured defaults: N=40, L=4, k=20, P_f=75
  const NormalFormGame game = make_forwarding_metagame(params);

  const NormalFormGame::Profile all_abstain(params.players,
                                            static_cast<std::size_t>(MetaAction::kAbstain));
  auto fixed = game.best_response_dynamics(all_abstain);
  std::cout << "best-response dynamics from all-Abstain converged: "
            << (fixed.has_value() ? "yes" : "no") << '\n';
  if (fixed) {
    std::cout << "fixed point:";
    static const char* names[] = {"Abstain", "Random", "NonRandom"};
    for (std::size_t a : *fixed) std::cout << ' ' << names[a];
    std::cout << "\nis Nash equilibrium: " << (game.is_nash(*fixed) ? "yes" : "NO") << '\n';
  }

  const auto equilibria = game.pure_nash_equilibria();
  std::cout << "pure Nash equilibria found by enumeration: " << equilibria.size() << '\n';

  NormalFormGame::Profile deviation(params.players,
                                    static_cast<std::size_t>(MetaAction::kNonRandom));
  const double aligned = game.payoff(0, deviation);
  deviation[0] = static_cast<std::size_t>(MetaAction::kRandom);
  const double random_dev = game.payoff(0, deviation);
  deviation[0] = static_cast<std::size_t>(MetaAction::kAbstain);
  const double abstain_dev = game.payoff(0, deviation);
  std::cout << "payoff of peer 0 when all play NonRandom: " << aligned
            << "\n  ... after unilateral switch to Random: " << random_dev
            << "\n  ... after unilateral switch to Abstain: " << abstain_dev
            << "\nconclusion: aligned non-random forwarding is self-enforcing.\n";
  return 0;
}
