// Fault-matrix sweep: robustness of connection setup and the data phase
// under combined link loss and silent node crashes.
//
// Every cell runs the same scenario with fault injection on (probe false
// negatives and delay jitter fixed, loss and crash rate swept), so the
// timeout-driven machinery — per-hop ack timers, NACK fast path, capped
// jittered backoff, keepalive failure detection and path re-formation —
// carries the whole failure-handling burden. Reported per cell:
//
//   delivery   data-phase keepalive delivery ratio
//   reform     total re-formations (setup retries + data-phase repairs)
//   failed     setups that exhausted their attempt budget
//   att/conn   mean setup attempts per launched connection
//   ttd        mean time-to-detect a path failure (s), with sample count
//
//   ./fault_matrix [seed]
#include <cstdlib>
#include <iostream>

#include "harness/replicate.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace {

using namespace p2panon;

harness::ScenarioConfig cell_config(std::uint64_t seed, double loss, double crashes_per_hour) {
  harness::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.overlay.node_count = 25;
  cfg.overlay.degree = 4;
  cfg.pair_count = 8;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(60.0);

  cfg.fault.link_loss = loss;
  cfg.fault.crash_rate_per_hour = crashes_per_hour;
  cfg.fault.crash_recovery_mean = sim::minutes(5.0);
  cfg.fault.probe_false_negative = 0.05;  // keeps every cell in fault mode
  cfg.fault.delay_jitter = 0.2;

  cfg.async_setup.attempt_deadline = sim::minutes(3.0);
  cfg.data_phase.duration = sim::minutes(2.0);
  cfg.data_phase.keepalive_interval = 10.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  constexpr std::size_t kReplicates = 3;

  const double losses[] = {0.0, 0.02, 0.05};
  const double crash_rates[] = {0.0, 1.0, 4.0};

  harness::print_banner(std::cout, "fault matrix",
                        "link loss x silent crash rate, pfn=0.05, jitter=0.2");

  harness::TextTable table(
      {"loss", "crash/h", "delivery", "reform", "failed", "att/conn", "ttd(s)", "ttd n"});
  for (const double loss : losses) {
    for (const double rate : crash_rates) {
      const auto agg =
          harness::run_replicated(cell_config(seed, loss, rate), kReplicates);
      const double launched = static_cast<double>(agg.total_connections_completed +
                                                  agg.total_connections_failed);
      table.add_row({harness::fmt(loss, 2), harness::fmt(rate, 0),
                     harness::fmt(agg.delivery_ratio.mean(), 3),
                     std::to_string(agg.total_reformations),
                     std::to_string(agg.total_connections_failed),
                     harness::fmt(launched > 0.0
                                      ? static_cast<double>(agg.total_setup_attempts) / launched
                                      : 0.0,
                                  2),
                     harness::fmt(agg.time_to_detect.mean(), 1),
                     std::to_string(agg.time_to_detect.count())});
      if (!agg.all_payments_conserved) {
        std::cerr << "payment conservation violated at loss=" << loss << " rate=" << rate
                  << "\n";
        return 1;
      }
    }
  }
  table.print(std::cout);
  return 0;
}
