// Fault-matrix sweep: robustness of connection setup and the data phase
// under combined link loss and silent node crashes.
//
// Every cell runs the same scenario with fault injection on (probe false
// negatives and delay jitter fixed, loss and crash rate swept), so the
// timeout-driven machinery — per-hop ack timers, NACK fast path, capped
// jittered backoff, keepalive failure detection and path re-formation —
// carries the whole failure-handling burden. Reported per cell:
//
//   delivery   data-phase keepalive delivery ratio
//   reform     total re-formations (setup retries + data-phase repairs)
//   failed     setups that exhausted their attempt budget
//   att/conn   mean setup attempts per launched connection
//   ttd        mean time-to-detect a path failure (s), with sample count
//   reps       replicates used / planned (adaptive stopping, DESIGN.md §3.12)
//
//   ./fault_matrix [seed] [--adaptive] [--eps X] [--checkpoint PATH]
//
// Fixed mode runs 3 replicates per cell (unchanged default). --adaptive
// raises the per-cell cap to 24 and stops each cell as soon as the anytime
// interval on its delivery ratio is within ±eps. --checkpoint makes the
// 3x3 grid crash-recoverable cell by cell. Per-cell used/planned counts are
// written atomically to BENCH_fault_matrix.json.
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "harness/replicate.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace {

using namespace p2panon;

harness::ScenarioConfig cell_config(std::uint64_t seed, double loss, double crashes_per_hour) {
  harness::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.overlay.node_count = 25;
  cfg.overlay.degree = 4;
  cfg.pair_count = 8;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(60.0);

  cfg.fault.link_loss = loss;
  cfg.fault.crash_rate_per_hour = crashes_per_hour;
  cfg.fault.crash_recovery_mean = sim::minutes(5.0);
  cfg.fault.probe_false_negative = 0.05;  // keeps every cell in fault mode
  cfg.fault.delay_jitter = 0.2;

  cfg.async_setup.attempt_deadline = sim::minutes(3.0);
  cfg.data_phase.duration = sim::minutes(2.0);
  cfg.data_phase.keepalive_interval = 10.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  harness::AdaptiveConfig adaptive = bench::parse_sweep_options(argc, argv, 0.02);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  // Fixed mode keeps the historical 3 replicates; adaptive mode plans up to
  // 24 per cell and lets the stopping rule spend them only where the
  // delivery ratio is noisy.
  const std::size_t planned = adaptive.adaptive ? 24 : 3;

  const double losses[] = {0.0, 0.02, 0.05};
  const double crash_rates[] = {0.0, 1.0, 4.0};

  const std::vector<harness::TrackedScenarioMetric> tracked = {
      {"delivery_ratio", &harness::ReplicatedResult::delivery_ratio, 0.0, false},
  };

  harness::print_banner(std::cout, "fault matrix",
                        "link loss x silent crash rate, pfn=0.05, jitter=0.2");

  harness::TextTable table({"loss", "crash/h", "delivery", "reform", "failed", "att/conn",
                            "ttd(s)", "ttd n", "reps"});
  std::ostringstream cells_json;
  bool first_cell = true;
  for (const double loss : losses) {
    for (const double rate : crash_rates) {
      std::ostringstream key;
      key << "loss" << harness::fmt(loss, 2) << "-crash" << harness::fmt(rate, 0);
      const harness::AdaptiveReplicatedResult adaptive_result = harness::run_replicated_adaptive(
          cell_config(seed, loss, rate), planned, adaptive, tracked, nullptr, key.str());
      const harness::ReplicatedResult& agg = adaptive_result.result;
      const double launched = static_cast<double>(agg.total_connections_completed +
                                                  agg.total_connections_failed);
      table.add_row({harness::fmt(loss, 2), harness::fmt(rate, 0),
                     harness::fmt(agg.delivery_ratio.mean(), 3),
                     std::to_string(agg.total_reformations),
                     std::to_string(agg.total_connections_failed),
                     harness::fmt(launched > 0.0
                                      ? static_cast<double>(agg.total_setup_attempts) / launched
                                      : 0.0,
                                  2),
                     harness::fmt(agg.time_to_detect.mean(), 1),
                     std::to_string(agg.time_to_detect.count()),
                     std::to_string(adaptive_result.outcome.replicates_used) + "/" +
                         std::to_string(adaptive_result.outcome.replicates_planned)});
      if (!agg.all_payments_conserved) {
        std::cerr << "payment conservation violated at loss=" << loss << " rate=" << rate
                  << "\n";
        return 1;
      }
      cells_json << (first_cell ? "" : ",") << "\n    {\"cell\": \"" << key.str()
                 << "\", \"delivery\": " << agg.delivery_ratio.mean() << ", "
                 << bench::adaptive_json_fields(adaptive_result.outcome) << "}";
      first_cell = false;
    }
  }
  table.print(std::cout);

  std::ostringstream json;
  json << "{\n"
       << "  \"adaptive\": " << (adaptive.adaptive ? "true" : "false") << ",\n"
       << "  \"eps\": " << adaptive.eps << ",\n"
       << "  \"cells\": [" << cells_json.str() << "\n  ]\n"
       << "}\n";
  bench::write_bench_json("BENCH_fault_matrix.json", json.str());
  return 0;
}
