// p2panon_sim — command-line driver for the full experiment harness.
//
// Run any paper-style scenario without writing code:
//
//   ./p2panon_sim --malicious 0.3 --strategy utility1 --tau 4 --replicates 16
//   ./p2panon_sim --nodes 80 --degree 8 --strategy spne --termination ttl --ttl 4
//   ./p2panon_sim --zipf 1.0 --cid-rotation 5 --csv out.csv
//
// Prints the headline metrics (forwarder set, path quality, payoffs with
// 95% CIs, latency, conservation check) and optionally appends a CSV row.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/replicate.hpp"
#include "harness/table.hpp"
#include "metrics/stats.hpp"

namespace {

using namespace p2panon;

void usage(const char* prog) {
  std::cout
      << "usage: " << prog << " [options]\n\n"
      << "overlay:\n"
      << "  --nodes N          overlay size (default 40, the paper's N)\n"
      << "  --degree D         neighbour-set size d (default 5)\n"
      << "  --malicious F      adversary fraction f in [0,1] (default 0)\n"
      << "  --always-online    malicious nodes never leave (availability attack)\n"
      << "  --session-median M median session time, minutes (default 60)\n"
      << "workload:\n"
      << "  --pairs N          (I,R) pairs (default 100)\n"
      << "  --connections K    connections per pair (default 20)\n"
      << "  --zipf S           responder popularity skew (default 0 = uniform)\n"
      << "contract & routing:\n"
      << "  --strategy S       random | utility1 | utility2 | spne (default utility1)\n"
      << "  --tau T            P_r = tau * P_f (default 2; paper sweeps 0.5..4)\n"
      << "  --w-selectivity W  edge-quality history weight w_s (default 0.5)\n"
      << "  --termination T    crowds | ttl (default crowds)\n"
      << "  --p-forward P      Crowds forwarding probability (default 0.75)\n"
      << "  --ttl H            hop bound for ttl termination (default 4)\n"
      << "  --cid-rotation E   rotate the connection-set id every E connections\n"
      << "  --drop P           malicious payload-drop probability (default 0)\n"
      << "run control:\n"
      << "  --seed S           base seed (default 1)\n"
      << "  --replicates R     Monte-Carlo replicates (default 8)\n"
      << "  --threads T        worker threads (default: hardware)\n"
      << "  --csv FILE         append one CSV result row to FILE\n"
      << "  --help             this text\n";
}

/// Tiny argv reader: value-taking options pull the next token.
struct Args {
  int argc;
  char** argv;
  int i = 1;
  bool ok = true;

  const char* next_value(const char* flag) {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << flag << '\n';
      ok = false;
      return "0";
    }
    return argv[++i];
  }
  double next_double(const char* flag) { return std::strtod(next_value(flag), nullptr); }
  long next_long(const char* flag) { return std::strtol(next_value(flag), nullptr, 10); }
};

}  // namespace

int main(int argc, char** argv) {
  harness::ScenarioConfig cfg = harness::paper_default_config(1);
  std::size_t replicates = 8;
  std::size_t threads = 0;
  std::string csv_path;

  Args args{argc, argv};
  for (; args.i < argc && args.ok; ++args.i) {
    const char* a = argv[args.i];
    if (std::strcmp(a, "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else if (std::strcmp(a, "--nodes") == 0) {
      cfg.overlay.node_count = static_cast<std::size_t>(args.next_long(a));
    } else if (std::strcmp(a, "--degree") == 0) {
      cfg.overlay.degree = static_cast<std::size_t>(args.next_long(a));
    } else if (std::strcmp(a, "--malicious") == 0) {
      cfg.overlay.malicious_fraction = args.next_double(a);
    } else if (std::strcmp(a, "--always-online") == 0) {
      cfg.overlay.malicious_always_online = true;
    } else if (std::strcmp(a, "--session-median") == 0) {
      cfg.overlay.churn.session_median = sim::minutes(args.next_double(a));
    } else if (std::strcmp(a, "--pairs") == 0) {
      cfg.pair_count = static_cast<std::size_t>(args.next_long(a));
    } else if (std::strcmp(a, "--connections") == 0) {
      cfg.connections_per_pair = static_cast<std::uint32_t>(args.next_long(a));
    } else if (std::strcmp(a, "--zipf") == 0) {
      cfg.responder_zipf = args.next_double(a);
    } else if (std::strcmp(a, "--strategy") == 0) {
      const std::string s = args.next_value(a);
      if (s == "random") cfg.good_strategy = core::StrategyKind::kRandom;
      else if (s == "utility1") cfg.good_strategy = core::StrategyKind::kUtilityModelI;
      else if (s == "utility2") cfg.good_strategy = core::StrategyKind::kUtilityModelII;
      else if (s == "spne") cfg.good_strategy = core::StrategyKind::kSpne;
      else {
        std::cerr << "unknown strategy: " << s << '\n';
        return 2;
      }
    } else if (std::strcmp(a, "--tau") == 0) {
      cfg.tau = args.next_double(a);
    } else if (std::strcmp(a, "--w-selectivity") == 0) {
      cfg.weights.w_selectivity = args.next_double(a);
      cfg.weights.w_availability = 1.0 - cfg.weights.w_selectivity;
    } else if (std::strcmp(a, "--termination") == 0) {
      const std::string s = args.next_value(a);
      if (s == "crowds") cfg.termination = core::TerminationPolicy::kCrowds;
      else if (s == "ttl") cfg.termination = core::TerminationPolicy::kHopCount;
      else {
        std::cerr << "unknown termination: " << s << '\n';
        return 2;
      }
    } else if (std::strcmp(a, "--p-forward") == 0) {
      cfg.p_forward = args.next_double(a);
    } else if (std::strcmp(a, "--ttl") == 0) {
      cfg.ttl_hops = static_cast<std::uint32_t>(args.next_long(a));
    } else if (std::strcmp(a, "--cid-rotation") == 0) {
      cfg.cid_rotation = static_cast<std::uint32_t>(args.next_long(a));
    } else if (std::strcmp(a, "--drop") == 0) {
      cfg.adversary.drop_probability = args.next_double(a);
    } else if (std::strcmp(a, "--seed") == 0) {
      cfg.seed = static_cast<std::uint64_t>(args.next_long(a));
    } else if (std::strcmp(a, "--replicates") == 0) {
      replicates = static_cast<std::size_t>(args.next_long(a));
    } else if (std::strcmp(a, "--threads") == 0) {
      threads = static_cast<std::size_t>(args.next_long(a));
    } else if (std::strcmp(a, "--csv") == 0) {
      csv_path = args.next_value(a);
    } else {
      std::cerr << "unknown option: " << a << " (try --help)\n";
      return 2;
    }
  }
  if (!args.ok) return 2;
  if (cfg.overlay.node_count < 2 || cfg.overlay.degree >= cfg.overlay.node_count ||
      cfg.overlay.malicious_fraction < 0.0 || cfg.overlay.malicious_fraction > 1.0 ||
      replicates == 0) {
    std::cerr << "invalid configuration (see --help)\n";
    return 2;
  }

  std::cout << "p2panon scenario: N=" << cfg.overlay.node_count << " d=" << cfg.overlay.degree
            << " f=" << cfg.overlay.malicious_fraction << " strategy="
            << core::strategy_name(cfg.good_strategy) << " tau=" << cfg.tau
            << " pairs=" << cfg.pair_count << " k=" << cfg.connections_per_pair
            << " replicates=" << replicates << " seed=" << cfg.seed << "\n\n";

  parallel::ThreadPool pool(threads);
  const harness::ReplicatedResult r = harness::run_replicated(cfg, replicates, &pool);

  const auto member_ci = r.member_payoff_ci();
  const auto set_ci = r.forwarder_set_ci();

  harness::TextTable table({"metric", "value"});
  table.add_row({"forwarder set ||pi||", harness::fmt_ci(set_ci.mean, set_ci.half_width)});
  table.add_row({"avg path length L", harness::fmt(r.avg_path_length.mean())});
  table.add_row({"path quality Q(pi)", harness::fmt(r.path_quality.mean(), 3)});
  table.add_row({"member payoff (good)", harness::fmt_ci(member_ci.mean, member_ci.half_width)});
  table.add_row({"node payoff total (good)", harness::fmt(r.good_payoff.mean())});
  table.add_row({"routing efficiency", harness::fmt(r.routing_efficiency.mean())});
  table.add_row({"initiator utility U_I", harness::fmt(r.initiator_utility.mean())});
  table.add_row({"initiator spend", harness::fmt(r.initiator_spend.mean())});
  table.add_row({"connection latency (s)", harness::fmt(r.connection_latency.mean(), 3)});
  table.add_row({"payoff Gini (nodes)", harness::fmt(metrics::gini(r.pooled_good_payoffs), 3)});
  table.add_row({"drop reformations", std::to_string(r.total_reformations)});
  table.add_row({"payments conserved", r.all_payments_conserved ? "yes" : "NO"});
  table.print(std::cout);

  if (!csv_path.empty()) {
    const bool fresh = !std::ifstream(csv_path).good();
    std::ofstream out(csv_path, std::ios::app);
    if (!out) {
      std::cerr << "cannot open " << csv_path << '\n';
      return 1;
    }
    if (fresh) {
      out << "nodes,degree,f,strategy,tau,pairs,k,seed,replicates,"
             "set_size,path_length,quality,member_payoff,member_ci,latency,conserved\n";
    }
    out << cfg.overlay.node_count << ',' << cfg.overlay.degree << ','
        << cfg.overlay.malicious_fraction << ',' << core::strategy_name(cfg.good_strategy)
        << ',' << cfg.tau << ',' << cfg.pair_count << ',' << cfg.connections_per_pair << ','
        << cfg.seed << ',' << replicates << ',' << set_ci.mean << ','
        << r.avg_path_length.mean() << ',' << r.path_quality.mean() << ',' << member_ci.mean
        << ',' << member_ci.half_width << ',' << r.connection_latency.mean() << ','
        << (r.all_payments_conserved ? 1 : 0) << '\n';
    std::cout << "\nappended CSV row to " << csv_path << '\n';
  }
  return r.all_payments_conserved ? 0 : 1;
}
