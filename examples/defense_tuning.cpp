// Defense-tuning example: dialling the system parameters against the three
// §5 attacks at once.
//
// Shows how an operator would pick (w_s : w_a), the cid-rotation epoch and
// the termination policy for a deployment facing availability attackers,
// droppers, and cid-linking insiders simultaneously — and what each dial
// costs in forwarder-set size and payments.
//
//   ./defense_tuning [seed]
#include <cstdlib>
#include <iostream>

#include "attack/traffic_analysis.hpp"
#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct Deployment {
  double w_availability = 0.5;
  std::uint32_t cid_rotation = 0;
};

struct Report {
  double set_size = 0.0;
  double malicious_capture = 0.0;
  double largest_profile = 0.0;
  double reformations = 0.0;
};

Report evaluate(const Deployment& d, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.malicious_fraction = 0.2;
  cfg.malicious_always_online = true;  // availability attackers
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::QualityWeights weights{1.0 - d.w_availability, d.w_availability};
  core::EdgeQualityEvaluator quality(probing, history, weights);
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());
  core::UtilityModelIRouting strategy;
  core::StrategyAssignment assign(overlay, strategy);

  std::vector<bool> compromised(overlay.size(), false);
  for (net::NodeId id : overlay.malicious_nodes()) compromised[id] = true;
  attack::TrafficAnalysis analysis(compromised);

  core::AdversaryModel adversary;
  adversary.drop_probability = 0.15;  // droppers force reformations

  overlay.start();
  simulator.run_until(sim::hours(1.0));

  Report rep;
  std::uint64_t captured = 0, total = 0, reformations = 0;
  auto pair_stream = root.child("pairs");
  auto run_stream = root.child("run");
  const std::size_t pairs = 15;
  for (net::PairId pid = 0; pid < pairs; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::Contract contract;
    contract.cid_rotation = d.cid_rotation;
    core::ConnectionSetSession session(pid, initiator, responder, contract);
    auto stream = run_stream.child("pair", pid);
    for (std::uint32_t k = 1; k <= 20; ++k) {
      simulator.run_until(simulator.now() + sim::minutes(2.0));
      overlay.force_online(initiator);
      overlay.force_online(responder);
      const core::BuiltPath& p = session.run_connection(builder, history, assign, ledger,
                                                        overlay, stream, adversary);
      analysis.observe_path(session.effective_pair(k), p.nodes);
      for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
        ++total;
        if (overlay.node(p.nodes[i]).is_malicious()) ++captured;
      }
    }
    rep.set_size += static_cast<double>(session.forwarder_set().size()) / pairs;
    reformations += session.reformations();
  }
  rep.malicious_capture = total > 0 ? static_cast<double>(captured) / total : 0.0;
  rep.largest_profile = static_cast<double>(analysis.largest_linked_profile());
  rep.reformations = static_cast<double>(reformations);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  std::cout << "Defense tuning under simultaneous attacks: 20% adversaries that stay\n"
               "always-online (availability attack), drop 15% of payloads, and link\n"
               "connections via cids.\n\n";

  const Deployment deployments[] = {
      {0.75, 0},   // availability-heavy, no rotation: fast but exposed
      {0.5, 0},    // paper default weights, no rotation
      {0.5, 5},    // + cid rotation
      {0.25, 5},   // history-heavy + rotation: resist availability attackers
  };

  std::cout << "w_a    rotation  ||pi||  capture  linked-profile  drop-reformations\n"
            << "---------------------------------------------------------------------\n";
  for (const Deployment& d : deployments) {
    const Report r = evaluate(d, seed);
    std::printf("%.2f   %-8s  %-6.1f  %-7.3f  %-14.0f  %.0f\n", d.w_availability,
                d.cid_rotation == 0 ? "never" : std::to_string(d.cid_rotation).c_str(),
                r.set_size, r.malicious_capture, r.largest_profile, r.reformations);
  }

  std::cout << "\nHow to read this:\n"
               "  * capture: share of forwarding instances through adversaries. Always-\n"
               "    online attackers earn a large share at any w_a (uptime feeds both the\n"
               "    availability estimate AND their presence in history); lowering w_a\n"
               "    and rotating cids each shave a little off. The structural fix is\n"
               "    keeping honest availability high — incentives, not weights.\n"
               "  * linked-profile: max connections an insider ties together — capped\n"
               "    exactly by the cid-rotation epoch.\n"
               "  * ||pi||: the anonymity-set cost of each defense combination (here\n"
               "    rotation is nearly free because availability carries continuity).\n";
  return 0;
}
