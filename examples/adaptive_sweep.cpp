// Tiny two-cell adaptive sweep: the kill-and-resume smoke gate's workload.
//
// Runs a miniature malicious-fraction sweep through run_replicated_adaptive
// and writes every final aggregate as its IEEE-754 bit pattern, so two runs
// of this binary can be compared byte-for-byte. The tier-1 gate
// (tests/harness/adaptive_smoke.py) runs it once uninterrupted, then again
// with --checkpoint and --kill-after-batch 1 — crashing after every single
// checkpoint save and restarting until the sweep completes — and asserts the
// two BENCH_adaptive_sweep.json files are identical. That is the
// checkpoint/resume invariance claim of DESIGN.md §3.12, end to end.
//
// Usage: adaptive_sweep [seed] [replicates] [--adaptive] [--eps X]
//                       [--checkpoint PATH] [--kill-after-batch N]
#include <sstream>

#include "common.hpp"

namespace {

using namespace p2panon;

harness::ScenarioConfig smoke_config(double f, std::uint64_t seed) {
  harness::ScenarioConfig cfg = harness::paper_default_config(seed);
  cfg.overlay.node_count = 15;
  cfg.overlay.degree = 3;
  cfg.overlay.malicious_fraction = f;
  cfg.pair_count = 4;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(20.0);
  return cfg;
}

std::string acc_bits(const metrics::Accumulator& acc) {
  const auto raw = acc.raw();
  std::ostringstream os;
  os << "\"" << harness::encode_u64(raw.n) << " " << harness::encode_u64(raw.mean_bits)
     << " " << harness::encode_u64(raw.m2_bits) << " " << harness::encode_u64(raw.min_bits)
     << " " << harness::encode_u64(raw.max_bits) << "\"";
  return os.str();
}

std::uint64_t pooled_digest(const harness::ReplicatedResult& r) {
  std::uint64_t h = harness::fnv1a_init();
  for (const double x : r.pooled_good_payoffs) h = harness::fnv1a_double(h, x);
  for (const double x : r.pooled_member_payoffs) h = harness::fnv1a_double(h, x);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2panon;
  using namespace p2panon::bench;

  const harness::AdaptiveConfig adaptive = parse_sweep_options(argc, argv, 0.05);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : base_seed();
  const std::size_t replicates =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10)) : 6;

  harness::print_banner(std::cout, "Adaptive sweep smoke workload",
                        "Two tiny cells, bit-pattern JSON output (seed " +
                            std::to_string(seed) + ", " + std::to_string(replicates) +
                            " replicates)");

  const std::vector<harness::TrackedScenarioMetric> tracked = {
      {"good_payoff", &harness::ReplicatedResult::good_payoff, 0.0, true},
  };

  std::ostringstream cells_json;
  bool first = true;
  for (const double f : {0.1, 0.2}) {
    harness::ScenarioConfig cfg = smoke_config(f, seed);
    const std::string key = "f" + harness::fmt(f, 2);
    const harness::AdaptiveReplicatedResult res =
        harness::run_replicated_adaptive(cfg, replicates, adaptive, tracked, nullptr, key);
    const harness::ReplicatedResult& r = res.result;
    std::cout << "cell " << key << ": " << res.outcome.replicates_used << "/"
              << res.outcome.replicates_planned << " replicates"
              << (res.outcome.resumed ? " (resumed)" : "")
              << (res.outcome.stopped_early ? " (stopped early)" : "") << "\n";
    // Only numerical state goes into the byte-compared artifact; run-shape
    // flags like `resumed` legitimately differ between a clean run and a
    // kill-and-resume run with identical numbers.
    cells_json << (first ? "" : ",") << "\n    {\"cell\": \"" << key << "\""
               << ", \"used\": " << res.outcome.replicates_used
               << ", \"planned\": " << res.outcome.replicates_planned
               << ", \"good_payoff\": " << acc_bits(r.good_payoff)
               << ", \"member_payoff\": " << acc_bits(r.member_payoff)
               << ", \"forwarder_set\": " << acc_bits(r.forwarder_set_size)
               << ", \"path_quality\": " << acc_bits(r.path_quality)
               << ", \"delivery_ratio\": " << acc_bits(r.delivery_ratio)
               << ", \"pooled_digest\": \"" << harness::encode_u64(pooled_digest(r)) << "\""
               << ", \"reformations\": " << r.total_reformations
               << ", \"churn_events\": " << r.total_churn_events
               << ", \"escrow_milli\": " << r.total_settlement_escrow_milli
               << ", \"conserved\": " << (r.all_payments_conserved ? "true" : "false")
               << "}";
    first = false;
  }

  std::ostringstream json;
  json << "{\n  \"seed\": " << seed << ",\n  \"cells\": [" << cells_json.str()
       << "\n  ]\n}\n";
  write_bench_json("BENCH_adaptive_sweep.json", json.str());
  return 0;
}
