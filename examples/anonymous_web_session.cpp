// Scenario example: recurring anonymous web browsing under churn and attack.
//
// The paper's §2.1 motivation: HTTP-style applications make repeated
// connections to the same responder, so the sequence of forwarding paths —
// not one path — determines vulnerability to intersection attacks. This
// example models a user browsing three "web sites" (responders) over a
// simulated day while 30% of the overlay is adversarial, compares utility
// routing against random routing, and runs the passive-logging intersection
// attack against both.
//
//   ./anonymous_web_session [seed]
#include <cstdlib>
#include <iostream>

#include "attack/intersection.hpp"
#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "net/probing.hpp"
#include "payment/settlement.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct BrowseOutcome {
  double forwarder_set = 0.0;   ///< mean ||pi|| over sites
  double attacker_bits = 0.0;   ///< anonymity bits left vs the attacker
  double payments = 0.0;        ///< total credits the user spent
  std::uint64_t reformed = 0;   ///< drop-forced path reformations
};

BrowseOutcome browse(core::StrategyKind kind, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;

  net::OverlayConfig ocfg;
  ocfg.node_count = 40;
  ocfg.degree = 5;
  ocfg.malicious_fraction = 0.3;
  net::Overlay overlay(ocfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());

  payment::Bank bank(root.child("bank"));
  payment::SettlementEngine engine(bank);
  auto keys = root.child("keys");
  for (net::NodeId id = 0; id < overlay.size(); ++id) {
    bank.open_account(id, payment::from_credits(1.0e6), keys.next_u64());
  }

  const auto strategy = core::make_strategy(kind);
  core::StrategyAssignment strategies(overlay, *strategy);

  overlay.start();
  simulator.run_until(sim::hours(1.0));

  const net::NodeId user = 7;
  const net::NodeId sites[] = {20, 31, 38};  // three responders

  // Adversaries occasionally drop payloads, forcing path reformations —
  // exactly the event an intersection attacker exploits.
  core::AdversaryModel adversary;
  adversary.drop_probability = 0.1;

  attack::OnlineSetIntersection observer(overlay.size());
  BrowseOutcome out;
  auto run_stream = root.child("browse");
  auto settle_stream = root.child("settle");

  for (std::size_t s = 0; s < 3; ++s) {
    core::Contract contract;
    contract.forwarding_benefit = root.child("pf", s).uniform(50.0, 100.0);
    contract.tau = 2.0;
    core::ConnectionSetSession session(static_cast<net::PairId>(s), user, sites[s], contract);

    std::size_t known = 0;
    for (std::uint32_t k = 0; k < 20; ++k) {
      simulator.run_until(simulator.now() + sim::minutes(3.0));
      overlay.force_online(user);
      overlay.force_online(sites[s]);
      session.run_connection(builder, history, strategies, ledger, overlay,
                             run_stream, adversary);
      if (session.forwarder_set().size() > known) {
        known = session.forwarder_set().size();
        observer.observe(overlay.online_nodes());
      }
    }
    const core::SettleOutcome settled =
        session.settle(bank, engine, ledger, overlay, settle_stream);
    out.forwarder_set += static_cast<double>(settled.forwarder_set_size) / 3.0;
    out.payments += settled.initiator_spend;
    out.reformed += session.reformations();
  }
  out.attacker_bits = observer.entropy_bits();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::cout << "Recurring anonymous web sessions: one user, three sites, 20 requests\n"
               "each, 30% adversarial overlay, 10% payload-drop attack.\n\n";

  const BrowseOutcome random_out = browse(p2panon::core::StrategyKind::kRandom, seed);
  const BrowseOutcome utility_out = browse(p2panon::core::StrategyKind::kUtilityModelI, seed);

  auto report = [](const char* name, const BrowseOutcome& o) {
    std::cout << name << ":\n"
              << "  mean forwarder set ||pi||  : " << o.forwarder_set << '\n'
              << "  drop-forced reformations   : " << o.reformed << '\n'
              << "  anonymity vs intersection  : " << o.attacker_bits << " bits\n"
              << "  total credits spent        : " << o.payments << "\n\n";
  };
  report("random routing (baseline)", random_out);
  report("utility model I (incentive-aligned)", utility_out);

  std::cout << "Takeaway: the incentive mechanism shrinks the forwarder set and the\n"
               "attacker's observation count while the user pays proportionally less\n"
               "(fewer forwarders to pay P_r shares to, fewer wasted instances).\n";
  return 0;
}
