// Multi-process chaos driver payload: the paper's session/settlement
// protocol over real loopback TCP, with faults injected by the OS (SIGKILL)
// instead of FaultInjector. tools/transport/run_chaos.py spawns one bank
// process and N node processes from this binary, kills forwarders and the
// bank mid-protocol, and asserts the PR 5 C1-C5 milli-credit conservation
// invariants against the bank's reconciled journal.
//
// Roles:
//   --role bank --journal PATH [--resume] [--port P] [--seed S] [--report PATH]
//     Owns the payment::Bank + SettlementEngine + AuditLog. Every mutating
//     request frame (Hello / OpenSettlement / Claim / Close) is appended
//     hex-encoded to the journal and flushed BEFORE it is applied
//     (write-ahead), so a SIGKILL at any instant loses at most a request
//     whose reply never left — and the peer's retry is idempotent (accounts
//     are looked up before opened, settlements are keyed by pair, claims
//     dedupe, close is first-wins). --resume replays the journal through
//     the same dispatch path against a freshly seeded bank, rebuilding the
//     exact pre-kill state: the bank is a pure function of (seed, ordered
//     mutating frames).
//   --role node --id N --bank P --seed S --sessions K
//     Prints "PORT <p>", then reads one "PEERS id:port ..." line on stdin.
//     Runs K initiator sessions (path setup hop-by-hop through forwarder
//     peers, settlement open, receipt contracts, forwarder claims, close)
//     while serving as forwarder/responder for everyone else on the same
//     single-threaded re-entrant pump. A setup that dies (SIGKILLed
//     forwarder) re-forms the path with fresh peers and prints "REFORM".
//     --sessions 0 is the serve-only shape the driver uses for restarted
//     forwarders.
//   --role sweep --bank P
//     Asks the bank to terminalise every open settlement and write the
//     reconciliation report (SweepMsg), then exits.
//
// Invariants reported by the bank's sweep (see DESIGN.md 3.9):
//   C1 bank money + outstanding coins unchanged end to end;
//   C2 every settlement terminal, none left Open/Claiming;
//   C3 escrow in == payouts + refunds, exact milli-credits, per settlement;
//   C4 audit-journal replay rebuilds the final bank state and per-account
//      escrow payouts match the settlement reports (double-pay detector);
//   C5 claims racing past a terminal settlement were refused, and expired
//      settlements refunded everything they took in.
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/suspicion.hpp"
#include "payment/audit.hpp"
#include "payment/bank.hpp"
#include "payment/settlement.hpp"
#include "sim/rng.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/wire_codec.hpp"

using namespace p2panon;
using namespace p2panon::transport;

namespace {

constexpr payment::Amount kInitialBalanceMilli = 10'000'000;  // 10k credits
constexpr payment::Amount kForwardingBenefitMilli = 50'000;   // P_f = 50
constexpr payment::Amount kRoutingBenefitMilli = 100'000;     // P_r = 100
constexpr double kSettlementDeadline = 1.0;  ///< logical; any sweep time > this

struct Options {
  std::string role;
  std::string journal;
  std::string report = "transport_chaos_report.json";
  bool resume = false;
  std::uint16_t port = 0;       ///< bank: fixed listen port on respawn
  std::uint16_t bank_port = 0;  ///< node/sweep: where the bank listens
  std::uint32_t id = 0;
  std::uint64_t seed = 42;
  std::uint32_t sessions = 0;
  std::uint32_t session_base = 0;  ///< respawned nodes: fresh pair-id range
};

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--role") o.role = next();
    else if (a == "--journal") o.journal = next();
    else if (a == "--report") o.report = next();
    else if (a == "--resume") o.resume = true;
    else if (a == "--port") o.port = static_cast<std::uint16_t>(std::stoul(next()));
    else if (a == "--bank") o.bank_port = static_cast<std::uint16_t>(std::stoul(next()));
    else if (a == "--id") o.id = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--seed") o.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (a == "--sessions") o.sessions = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--session-base")
      o.session_base = static_cast<std::uint32_t>(std::stoul(next()));
  }
  return o;
}

std::string hex_encode(const std::vector<std::byte>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::byte b : bytes) {
    s.push_back(digits[static_cast<unsigned>(b) >> 4]);
    s.push_back(digits[static_cast<unsigned>(b) & 0xF]);
  }
  return s;
}

std::vector<std::byte> hex_decode(const std::string& s) {
  auto nibble = [](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    return static_cast<unsigned>(c - 'a') + 10;
  };
  std::vector<std::byte> bytes(s.size() / 2);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>((nibble(s[2 * i]) << 4) | nibble(s[2 * i + 1]));
  }
  return bytes;
}

// --- Bank role --------------------------------------------------------------

class BankProcess {
 public:
  explicit BankProcess(const Options& opt)
      : opt_(opt),
        bank_(sim::rng::Stream(opt.seed).child("bank", 0)),
        engine_(bank_),
        key_stream_(sim::rng::Stream(opt.seed).child("mac-keys", 0)),
        transport_(TcpConfig{}, sim::rng::Stream(opt.seed).child("tcp", 0)) {
    bank_.attach_audit(&audit_);
  }

  int run() {
    if (opt_.resume) replay_journal();
    journal_out_.open(opt_.journal, std::ios::app);
    if (!journal_out_) {
      std::cerr << "bank: cannot open journal " << opt_.journal << "\n";
      return 1;
    }
    const std::uint16_t port = transport_.listen(opt_.port);
    if (port == 0) {
      std::cerr << "bank: listen failed\n";
      return 1;
    }
    transport_.set_handler(
        [this](const wire::WireMessage& m) { return handle(m, /*replay=*/false); });
    std::cout << "PORT " << port << "\n" << std::flush;
    for (;;) {
      transport_.pump(0.05);
      if (sweep_done_) break;
      if (stdin_closed()) break;  // driver went away: exit instead of leaking
    }
    transport_.shutdown();
    return 0;
  }

 private:
  /// One dispatch path for live traffic AND journal replay: a replayed
  /// frame must traverse exactly the code a live one did.
  std::optional<wire::WireMessage> handle(const wire::WireMessage& m, bool replay) {
    if (const auto* hello = std::get_if<wire::HelloMsg>(&m)) {
      if (!replay) journal_frame(m);
      payment::AccountId acct = bank_.account_of(hello->node);
      if (acct == payment::kInvalidAccount) {
        // The bank issues the MAC key: a restarted node re-learns the same
        // key from the same reply, so its receipts keep verifying.
        const payment::crypto::u64 key = key_stream_.child("node", hello->node).next_u64();
        acct = bank_.open_account(hello->node, kInitialBalanceMilli, key);
        money_minted_ += kInitialBalanceMilli;
      }
      return wire::HelloReplyMsg{acct, bank_.account_mac_key(acct), bank_.balance(acct)};
    }
    if (const auto* open = std::get_if<wire::OpenSettlementMsg>(&m)) {
      const auto it = sid_by_pair_.find(open->pair);
      if (it != sid_by_pair_.end()) {  // retried request: first open won
        return wire::OpenReplyMsg{1, it->second};
      }
      // A hostile or half-initialised peer must not crash the bank (nor
      // poison the journal with a frame that crashes every resume).
      if (open->initiator_account >= bank_.account_count() || open->escrow_milli <= 0) {
        return wire::OpenReplyMsg{0, 0};
      }
      if (!replay) journal_frame(m);
      payment::Wallet wallet(bank_, open->initiator_account,
                             sim::rng::Stream(opt_.seed).child("wallet", open->pair));
      const auto coins = wallet.withdraw(open->escrow_milli);
      if (!coins) return wire::OpenReplyMsg{0, 0};
      const auto escrow = bank_.open_escrow(*coins);
      if (!escrow) return wire::OpenReplyMsg{0, 0};
      std::vector<payment::PathRecord> records;
      records.reserve(open->records.size());
      for (const wire::WirePathRecord& r : open->records) {
        records.push_back(payment::PathRecord{r.conn_index, r.entry, r.exit, r.forwarders});
      }
      const payment::SettlementId sid = engine_.open(
          open->pair, *escrow,
          payment::SettlementTerms{open->forwarding_benefit_milli,
                                   open->routing_benefit_milli},
          records, open->initiator_account, kSettlementDeadline);
      sid_by_pair_.emplace(open->pair, sid);
      escrow_in_ += open->escrow_milli;
      return wire::OpenReplyMsg{1, sid};
    }
    if (const auto* claim = std::get_if<wire::ClaimMsg>(&m)) {
      if (claim->claimant >= bank_.account_count()) {  // see OpenSettlement guard
        return wire::ClaimReplyMsg{
            static_cast<std::uint8_t>(payment::ClaimResult::kWrongClaimant)};
      }
      if (!replay) journal_frame(m);
      const payment::ClaimResult r =
          engine_.submit_claim(claim->sid, claim->claimant, claim->receipt);
      return wire::ClaimReplyMsg{static_cast<std::uint8_t>(r)};
    }
    if (const auto* close = std::get_if<wire::CloseMsg>(&m)) {
      if (close->sid >= engine_.settlement_count()) {  // engine close() throws
        return wire::CloseReplyMsg{0};
      }
      if (!replay) journal_frame(m);
      engine_.close(close->sid);
      return wire::CloseReplyMsg{1};
    }
    if (const auto* sweep = std::get_if<wire::SweepMsg>(&m)) {
      const std::size_t n = engine_.expire_due(kSettlementDeadline + 1.0);
      if (sweep->write_report != 0) {
        write_report();
        sweep_done_ = true;
      }
      return wire::SweepReplyMsg{static_cast<std::uint32_t>(n)};
    }
    return std::nullopt;
  }

  void journal_frame(const wire::WireMessage& m) {
    scratch_.clear();
    encode(m, scratch_);
    journal_out_ << hex_encode(scratch_) << "\n" << std::flush;
  }

  void replay_journal() {
    std::ifstream in(opt_.journal);
    std::string line;
    std::size_t replayed = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::vector<std::byte> bytes = hex_decode(line);
      wire::WireMessage m;
      std::size_t consumed = 0;
      if (decode(bytes, m, consumed) != DecodeResult::kOk) continue;  // torn tail write
      (void)handle(m, /*replay=*/true);
      ++replayed;
    }
    std::cerr << "bank: resumed from " << replayed << " journaled frames\n";
  }

  void write_report() {
    // C1: every credit in existence was minted by an account opening.
    const bool c1 = bank_.total_money() + bank_.outstanding_coin_value() == money_minted_;

    // C2 + C3 + C5 walk every settlement's terminal report.
    bool c2 = true;
    bool c3 = true;
    bool c5 = true;
    payment::Amount paid_total = 0;
    payment::Amount refunded_total = 0;
    std::size_t closed = 0;
    std::size_t abandoned = 0;
    std::size_t expired = 0;
    std::map<payment::AccountId, payment::Amount> payouts;
    for (const auto& [pair, sid] : sid_by_pair_) {
      if (!engine_.is_closed(sid)) {
        c2 = false;
        continue;
      }
      const payment::SettlementReport* rep = engine_.report(sid);
      if (rep == nullptr) {
        c2 = false;
        continue;
      }
      if (rep->escrow_in != rep->paid_out + rep->refunded) c3 = false;
      if (rep->outcome == payment::SettlementState::kExpired &&
          rep->refunded != rep->escrow_in) {
        c5 = false;
      }
      paid_total += rep->paid_out;
      refunded_total += rep->refunded;
      switch (rep->outcome) {
        case payment::SettlementState::kClosed: ++closed; break;
        case payment::SettlementState::kAbandoned: ++abandoned; break;
        case payment::SettlementState::kExpired: ++expired; break;
        default: c2 = false; break;
      }
      for (const auto& [acct, amount] : rep->payouts) payouts[acct] += amount;
    }
    if (escrow_in_ != paid_total + refunded_total) c3 = false;

    // C4: replaying the audit journal from zero must rebuild the bank's
    // exact final balances, and the journal's per-account escrow payouts
    // must equal the settlement reports' (bank side == node side).
    payment::ReplayState replayed;
    bool c4 = audit_.replay(replayed);
    if (c4) {
      for (payment::AccountId a = 0; a < bank_.account_count(); ++a) {
        if (replayed.accounts.size() <= a || replayed.accounts[a] != bank_.balance(a)) {
          c4 = false;
          break;
        }
      }
      if (replayed.outstanding != bank_.outstanding_coin_value()) c4 = false;
    }
    if (c4) {
      std::map<payment::AccountId, payment::Amount> journal_payouts;
      for (const payment::Transaction& tx : audit_.transactions()) {
        if (tx.kind == payment::TxKind::kEscrowPay) journal_payouts[tx.account] += tx.amount;
      }
      if (journal_payouts != payouts) c4 = false;
    }

    std::ofstream out(opt_.report);
    out << "{\n"
        << "  \"c1_money_conserved\": " << (c1 ? "true" : "false") << ",\n"
        << "  \"c2_all_terminal\": " << (c2 ? "true" : "false") << ",\n"
        << "  \"c3_escrow_drained\": " << (c3 ? "true" : "false") << ",\n"
        << "  \"c4_journal_reconciles\": " << (c4 ? "true" : "false") << ",\n"
        << "  \"c5_terminal_refused_and_expired_refunded\": " << (c5 ? "true" : "false")
        << ",\n"
        << "  \"settlements\": " << sid_by_pair_.size() << ",\n"
        << "  \"closed\": " << closed << ",\n"
        << "  \"abandoned\": " << abandoned << ",\n"
        << "  \"expired\": " << expired << ",\n"
        << "  \"claims_accepted\": " << engine_.claims_accepted() << ",\n"
        << "  \"claims_rejected\": " << engine_.claims_rejected() << ",\n"
        << "  \"claims_after_terminal\": " << engine_.claims_after_terminal() << ",\n"
        << "  \"escrow_milli\": " << escrow_in_ << ",\n"
        << "  \"paid_milli\": " << paid_total << ",\n"
        << "  \"refunded_milli\": " << refunded_total << ",\n"
        << "  \"frames_rejected\": " << transport_.counters().frames_rejected << "\n"
        << "}\n";
  }

  static bool stdin_closed() {
    pollfd p{STDIN_FILENO, POLLIN, 0};
    if (::poll(&p, 1, 0) <= 0) return false;
    if ((p.revents & POLLIN) != 0) {
      char buf[256];
      const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
      return n == 0;  // lines from the driver are ignored; EOF means exit
    }
    return (p.revents & (POLLERR | POLLHUP)) != 0;
  }

  Options opt_;
  payment::AuditLog audit_;
  payment::Bank bank_;
  payment::SettlementEngine engine_;
  sim::rng::Stream key_stream_;
  TcpTransport transport_;
  std::ofstream journal_out_;
  std::vector<std::byte> scratch_;
  std::map<net::PairId, payment::SettlementId> sid_by_pair_;
  payment::Amount money_minted_ = 0;
  payment::Amount escrow_in_ = 0;
  bool sweep_done_ = false;
};

// --- Node role --------------------------------------------------------------

class NodeProcess {
 public:
  /// Snappier than the defaults: a SIGKILLed forwarder must fail the setup
  /// cascade in well under a second so the initiator can re-form its path
  /// within the detection budget instead of riding a 10-attempt backoff.
  static TcpConfig node_config() {
    TcpConfig c;
    c.connect_backoff_base = 0.02;
    c.connect_backoff_cap = 0.2;
    c.connect_max_attempts = 4;
    c.read_deadline = 3.0;
    c.heartbeat_period = 0.2;
    c.heartbeat_timeout = 1.0;
    return c;
  }

  explicit NodeProcess(const Options& opt)
      : opt_(opt),
        rng_(sim::rng::Stream(opt.seed).child("node", opt.id)),
        transport_(node_config(), sim::rng::Stream(opt.seed).child("node-tcp", opt.id)) {}

  int run() {
    const std::uint16_t port = transport_.listen(opt_.port);
    if (port == 0) {
      std::cerr << "node " << opt_.id << ": listen failed\n";
      return 1;
    }
    std::cout << "PORT " << port << "\n" << std::flush;
    if (!read_peers()) return 1;
    // Heartbeat silence feeds the same SuspicionTracker the sim's async
    // setup uses: a SIGKILLed forwarder is never announced, so the only
    // evidence against it is behavioural, exactly as in the fault model.
    net::NodeId max_id = 0;
    for (const auto& [id, p] : peer_port_) max_id = std::max(max_id, id);
    suspicion_.emplace(max_id + 1);
    transport_.set_peer_dead([this](std::uint16_t dead_port) {
      for (const auto& [id, p] : peer_port_) {
        if (p == dead_port) {
          suspicion_->record_timeout(id);
          std::cout << "SUSPECT " << id << "\n" << std::flush;
        }
      }
    });
    // Hello BEFORE installing the handler: a respawned forwarder must not
    // serve ContractMsg (and claim) until it has re-learned its account.
    if (!hello()) return 1;
    transport_.set_handler([this](const wire::WireMessage& m) { return handle(m); });

    std::uint32_t done = 0;
    for (std::uint32_t s = opt_.session_base; s < opt_.session_base + opt_.sessions; ++s) {
      if (run_session(s)) {
        ++done;
        std::cout << "SESSION " << s << " ok\n" << std::flush;
      } else {
        std::cout << "SESSION " << s << " failed\n" << std::flush;
      }
      // Serve forwarder traffic between own sessions.
      for (int i = 0; i < 5; ++i) transport_.pump(0.01);
    }
    std::cout << "DONE sessions=" << done << "\n" << std::flush;

    // Keep serving until the driver closes stdin or says QUIT.
    for (;;) {
      transport_.pump(0.05);
      pollfd p{STDIN_FILENO, POLLIN, 0};
      if (::poll(&p, 1, 0) > 0) {
        char buf[256];
        const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
        if (n <= 0 || std::memchr(buf, 'Q', static_cast<std::size_t>(n)) != nullptr) break;
      }
    }
    transport_.shutdown();  // graceful: Bye, not silence
    return 0;
  }

 private:
  bool read_peers() {
    std::string line;
    if (!std::getline(std::cin, line)) return false;
    std::istringstream in(line);
    std::string tag;
    in >> tag;  // "PEERS"
    std::string item;
    while (in >> item) {
      const std::size_t colon = item.find(':');
      if (colon == std::string::npos) continue;
      const auto id = static_cast<std::uint32_t>(std::stoul(item.substr(0, colon)));
      const auto p = static_cast<std::uint16_t>(std::stoul(item.substr(colon + 1)));
      peer_port_[id] = p;
    }
    return !peer_port_.empty();
  }

  /// request() with retry: the bank (or a forwarder) may be dead right now
  /// and respawned by the driver a moment later on the same port.
  std::optional<wire::WireMessage> request_retry(std::uint16_t peer,
                                                 const wire::WireMessage& msg, int attempts) {
    for (int i = 0; i < attempts; ++i) {
      auto reply = transport_.request(peer, msg);
      if (reply) return reply;
      transport_.pump(0.1);
    }
    return std::nullopt;
  }

  bool hello() {
    const auto reply =
        request_retry(opt_.bank_port, wire::HelloMsg{opt_.id}, /*attempts=*/20);
    if (!reply) {
      std::cerr << "node " << opt_.id << ": bank unreachable\n";
      return false;
    }
    const auto* hr = std::get_if<wire::HelloReplyMsg>(&*reply);
    if (hr == nullptr) return false;
    account_ = hr->account;
    mac_key_ = hr->mac_key;
    return true;
  }

  std::optional<wire::WireMessage> handle(const wire::WireMessage& m) {
    if (const auto* setup = std::get_if<wire::SetupMsg>(&m)) {
      // Hop-by-hop cascade: forward to the next hop and ack only once the
      // downstream ack arrived, so the initiator's ack is end-to-end.
      if (setup->hop + 1 < setup->path.size()) {
        wire::SetupMsg next = *setup;
        next.hop = setup->hop + 1;
        const auto it = peer_port_.find(setup->path[next.hop]);
        if (it == peer_port_.end()) return std::nullopt;
        const auto ack = transport_.request(it->second, next);
        if (!ack || std::get_if<wire::SetupAckMsg>(&*ack) == nullptr) {
          return std::nullopt;  // downstream dead: no ack, initiator re-forms
        }
      }
      return wire::SetupAckMsg{setup->pair, setup->conn_index};
    }
    if (const auto* contract = std::get_if<wire::ContractMsg>(&m)) {
      // The initiator sent a receipt template; only this node can MAC it.
      payment::ForwardReceipt r = contract->receipt;
      r.mac = payment::receipt_mac(mac_key_, r);
      const auto reply = request_retry(contract->bank_port,
                                       wire::ClaimMsg{contract->sid, account_, r},
                                       /*attempts=*/10);
      if (reply) ++claims_submitted_;
      return wire::ContractAckMsg{contract->sid};
    }
    if (const auto* data = std::get_if<wire::DataMsg>(&m)) {
      wire::DataMsg echo = *data;
      echo.echo = 1;
      return echo;
    }
    return std::nullopt;
  }

  bool run_session(std::uint32_t s) {
    sim::rng::Stream stream = rng_.child("session", s);
    const net::PairId pair = opt_.id * 100'000 + s;

    // Re-form the path until a setup survives: pick a responder and 1-3
    // forwarders among the live peers; any SIGKILLed hop fails the cascade
    // and the next attempt draws a fresh path.
    std::vector<net::NodeId> path;
    bool established = false;
    for (std::uint32_t attempt = 0; attempt < 6 && !established; ++attempt) {
      path = pick_path(stream.child("path", attempt));
      if (path.size() < 3) return false;  // not enough peers
      // Heartbeat-watch the chosen forwarders for the duration of the
      // setup: if one was SIGKILLed, silence (not a NACK) implicates it.
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        transport_.watch(peer_port_.at(path[i]));
      }
      wire::SetupMsg setup{pair, 0, 1, path};
      const auto it = peer_port_.find(path[1]);
      std::optional<wire::WireMessage> ack;
      if (it != peer_port_.end()) ack = transport_.request(it->second, setup);
      established = ack && std::get_if<wire::SetupAckMsg>(&*ack) != nullptr;
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        transport_.unwatch(peer_port_.at(path[i]));
        if (established) suspicion_->record_success(path[i]);  // ack vouches
      }
      if (!established) {
        // Same model as the sim's async setup: an ack timeout implicates
        // the hop's receiver (the first forwarder we handed the leg to).
        suspicion_->record_timeout(path[1]);
        std::cout << "SUSPECT " << path[1] << "\n" << std::flush;
        if (attempt + 1 < 6) {
          std::cout << "REFORM session=" << s << " attempt=" << attempt << "\n"
                    << std::flush;
        }
      }
    }
    if (!established) return false;

    // One end-to-end data ping to the responder.
    const auto rit = peer_port_.find(path.back());
    if (rit != peer_port_.end()) {
      (void)transport_.request(rit->second, wire::DataMsg{pair, 0, 0, 1, 0, 0});
    }

    // Open the settlement: one validated record for connection 0.
    const std::vector<net::NodeId> forwarders(path.begin() + 1, path.end() - 1);
    const payment::Amount escrow =
        kForwardingBenefitMilli * static_cast<payment::Amount>(forwarders.size()) +
        kRoutingBenefitMilli;
    wire::OpenSettlementMsg open{
        pair, account_, escrow, kForwardingBenefitMilli, kRoutingBenefitMilli,
        {wire::WirePathRecord{0, opt_.id, path.back(), forwarders}}};
    const auto opened = request_retry(opt_.bank_port, open, /*attempts=*/20);
    if (!opened) return false;
    const auto* reply = std::get_if<wire::OpenReplyMsg>(&*opened);
    if (reply == nullptr || reply->ok == 0) return false;
    const std::uint32_t sid = reply->sid;

    // Hand each forwarder its receipt template; it MACs and claims itself.
    for (std::size_t i = 0; i < forwarders.size(); ++i) {
      const net::NodeId fwd = forwarders[i];
      payment::ForwardReceipt tmpl;
      tmpl.pair = pair;
      tmpl.conn_index = 0;
      tmpl.forwarder = fwd;
      tmpl.predecessor = path[i];      // path[i] precedes path[i + 1] == fwd
      tmpl.successor = path[i + 2];
      const auto it = peer_port_.find(fwd);
      if (it == peer_port_.end()) continue;
      (void)request_retry(it->second, wire::ContractMsg{sid, opt_.bank_port, tmpl},
                          /*attempts=*/5);
    }

    // Most sessions close; every 7th "crashes" before closing, leaving the
    // settlement for the deadline sweep (abandon/expire paths).
    if (s % 7 == 6) return true;
    const auto closed =
        request_retry(opt_.bank_port, wire::CloseMsg{sid}, /*attempts=*/20);
    return closed.has_value();
  }

  std::vector<net::NodeId> pick_path(sim::rng::Stream stream) {
    std::vector<net::NodeId> others;
    for (const auto& [id, port] : peer_port_) {
      if (id != opt_.id) others.push_back(id);
    }
    if (others.size() < 2) return {};
    // Fisher-Yates prefix shuffle: first element the responder-to-be, the
    // next 1-3 the forwarders.
    for (std::size_t i = 0; i + 1 < others.size(); ++i) {
      const auto j = static_cast<std::size_t>(stream.uniform_int(
          static_cast<std::int64_t>(i), static_cast<std::int64_t>(others.size() - 1)));
      std::swap(others[i], others[j]);
    }
    // Suspicion steers re-formation: peers implicated by heartbeat silence
    // sink to the back, so a killed forwarder is avoided on the next draw.
    std::stable_partition(others.begin(), others.end(), [&](net::NodeId id) {
      return suspicion_->availability_factor(id) >= 0.5;
    });
    const auto want = static_cast<std::size_t>(stream.uniform_int(1, 3));
    const std::size_t n_fwd = std::min(want, others.size() - 1);
    std::vector<net::NodeId> path;
    path.push_back(opt_.id);
    for (std::size_t i = 0; i < n_fwd; ++i) path.push_back(others[1 + i]);
    path.push_back(others[0]);  // responder
    return path;
  }

  Options opt_;
  sim::rng::Stream rng_;
  TcpTransport transport_;
  std::optional<core::SuspicionTracker> suspicion_;
  std::map<net::NodeId, std::uint16_t> peer_port_;
  payment::AccountId account_ = payment::kInvalidAccount;
  payment::crypto::u64 mac_key_ = 0;
  std::uint64_t claims_submitted_ = 0;
};

// --- Sweep role -------------------------------------------------------------

int run_sweep(const Options& opt) {
  TcpTransport t(TcpConfig{}, sim::rng::Stream(opt.seed).child("sweep", 0));
  const auto reply = t.request(opt.bank_port, wire::SweepMsg{1});
  if (!reply) {
    std::cerr << "sweep: bank unreachable\n";
    return 1;
  }
  const auto* sr = std::get_if<wire::SweepReplyMsg>(&*reply);
  std::cout << "SWEPT " << (sr != nullptr ? sr->terminalised : 0) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  if (!TcpTransport::sockets_available()) {
    std::cerr << "sockets unavailable in this environment\n";
    return 77;  // conventional skip code
  }
  if (opt.role == "bank") return BankProcess(opt).run();
  if (opt.role == "node") return NodeProcess(opt).run();
  if (opt.role == "sweep") return run_sweep(opt);
  std::cerr << "usage: transport_chaos --role bank|node|sweep [options]\n";
  return 2;
}
