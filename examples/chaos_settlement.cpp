// Chaos sweep for the crash-tolerant settlement lifecycle: hundreds of
// randomized, seeded fault schedules, each a full scenario whose settlement
// phase runs under a different mix of lost/delayed claims, initiator and
// forwarder crashes, deadlines — and (on most schedules) message-plane
// faults underneath. After every schedule the money-conservation invariants
// are checked exactly, in integer milli-credits:
//
//   C1  bank money + outstanding coins unchanged end to end;
//   C2  every settlement terminal (Closed | Abandoned | Expired), none open;
//   C3  escrow in == payouts + refunds (no residuals: every terminalisation
//       drains its escrow one way or the other);
//   C4  bank-side audit journal reconciles against node-side settlement
//       reports (replay rebuilds the bank state; per-account escrow payouts
//       and refund totals match the reports) — the double-pay detector;
//   C5  claims that raced past a terminal settlement were refused, and an
//       expired settlement refunded everything it took in.
//
// Any violated invariant names the schedule (its seed reproduces the run
// bit for bit) and exits non-zero, so the ctest `chaos` label is a gate.
//
//   ./chaos_settlement [seed] [schedules]     (default 42, 200)
//
// Summary counters are written to BENCH_chaos_settlement.json (in
// $P2PANON_CSV_DIR when set, else the cwd).
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "harness/scenario.hpp"
#include "sim/rng.hpp"

namespace {

using namespace p2panon;

/// One randomized fault schedule. Every knob is drawn from the schedule's
/// own stream child, so schedule i of seed s is a fixed, replayable world.
harness::ScenarioConfig schedule_config(std::uint64_t seed, std::uint64_t index) {
  sim::rng::Stream draw = sim::rng::Stream(seed).child("chaos-schedule", index);

  harness::ScenarioConfig cfg;
  cfg.seed = seed * 1000003 + index;  // distinct scenario universe per schedule
  cfg.overlay.node_count = 16;
  cfg.overlay.degree = 4;
  cfg.pair_count = 5;
  cfg.connections_per_pair = 3;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(30.0);

  // Bank plane: always chaotic (this is the subject under test).
  cfg.fault.bank.claim_loss = draw.uniform(0.0, 0.5);
  cfg.fault.bank.claim_delay_mean = draw.uniform(0.0, sim::minutes(10.0));
  cfg.fault.bank.initiator_crash = draw.uniform(0.0, 0.6);
  cfg.fault.bank.forwarder_crash = draw.uniform(0.0, 0.4);
  cfg.fault.bank.claim_deadline = draw.uniform(sim::minutes(5.0), sim::minutes(30.0));
  cfg.fault.bank.close_after = draw.uniform(sim::minutes(1.0), sim::minutes(15.0));
  cfg.fault.bank.claim_spread = draw.uniform(30.0, sim::minutes(8.0));
  cfg.fault.bank.lifecycle = true;  // lifecycle on even if every draw above is ~0

  // Message/liveness plane underneath, on 3 of 4 schedules; the rest isolate
  // the bank plane on the synchronous data path.
  if (index % 4 != 3) {
    cfg.fault.link_loss = draw.uniform(0.0, 0.08);
    cfg.fault.delay_jitter = draw.uniform(0.0, 0.4);
    cfg.fault.crash_rate_per_hour = draw.uniform(0.0, 6.0);
    // Half of these worlds never let a crashed node back up.
    cfg.fault.crash_recovery_mean =
        draw.bernoulli(0.5) ? 0.0 : draw.uniform(sim::minutes(2.0), sim::minutes(15.0));
    cfg.fault.probe_false_negative = draw.uniform(0.0, 0.15);
    cfg.async_setup.attempt_deadline = sim::minutes(3.0);
    cfg.data_phase.duration = 60.0;
    cfg.data_phase.keepalive_interval = 10.0;
  }
  return cfg;
}

struct Tally {
  std::uint64_t schedules = 0;
  std::uint64_t closed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t expired = 0;
  std::uint64_t prorata = 0;
  std::uint64_t claims_submitted = 0;
  std::uint64_t claims_lost = 0;
  std::uint64_t claims_rejected = 0;
  std::uint64_t claims_after_terminal = 0;
  std::int64_t escrow_milli = 0;
  std::int64_t paid_milli = 0;
  std::int64_t refunded_milli = 0;
};

void write_json(const Tally& t) {
  std::filesystem::path dir = std::filesystem::current_path();
  if (const char* csv_dir = std::getenv("P2PANON_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(csv_dir, ec);
    if (!ec) dir = csv_dir;
  }
  const std::filesystem::path out_path = dir / "BENCH_chaos_settlement.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "BENCH_chaos_settlement.json: cannot open " << out_path << "\n";
    return;
  }
  out << "{\n"
      << "  \"schedules\": " << t.schedules << ",\n"
      << "  \"settlements_closed\": " << t.closed << ",\n"
      << "  \"settlements_abandoned\": " << t.abandoned << ",\n"
      << "  \"settlements_expired\": " << t.expired << ",\n"
      << "  \"settlements_prorata\": " << t.prorata << ",\n"
      << "  \"claims_submitted\": " << t.claims_submitted << ",\n"
      << "  \"claims_lost\": " << t.claims_lost << ",\n"
      << "  \"claims_rejected\": " << t.claims_rejected << ",\n"
      << "  \"claims_after_terminal\": " << t.claims_after_terminal << ",\n"
      << "  \"escrow_milli\": " << t.escrow_milli << ",\n"
      << "  \"paid_milli\": " << t.paid_milli << ",\n"
      << "  \"refunded_milli\": " << t.refunded_milli << ",\n"
      << "  \"conserved\": true,\n"
      << "  \"reconciled\": true\n"
      << "}\n";
  std::cout << "wrote " << out_path.string() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::uint64_t schedules = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  Tally tally;
  for (std::uint64_t i = 0; i < schedules; ++i) {
    const harness::ScenarioConfig cfg = schedule_config(seed, i);
    const harness::ScenarioResult r = harness::ScenarioRunner(cfg).run();
    auto fail = [&](const char* what) {
      std::cerr << "chaos schedule " << i << " (seed " << seed << "): " << what << "\n";
      std::exit(1);
    };

    if (!r.payment_conserved) fail("C1: bank money + outstanding coins not conserved");
    const std::uint64_t terminal =
        r.settlements_closed + r.settlements_abandoned + r.settlements_expired;
    if (terminal != cfg.pair_count) fail("C2: a settlement never terminalised");
    if (r.settlement_escrow_milli != r.settlement_paid_milli + r.settlement_refunded_milli) {
      fail("C3: escrow in != payouts + refunds (residual money)");
    }
    if (!r.settlement_reconciled) fail("C4: audit journal does not reconcile with reports");
    if (r.settlements_expired > 0 && r.settlement_refunded_milli <= 0) {
      fail("C5: expired settlements must refund");
    }

    tally.schedules += 1;
    tally.closed += r.settlements_closed;
    tally.abandoned += r.settlements_abandoned;
    tally.expired += r.settlements_expired;
    tally.prorata += r.settlements_prorata;
    tally.claims_submitted += r.claims_submitted;
    tally.claims_lost += r.claims_lost;
    tally.claims_rejected += r.claims_rejected;
    tally.claims_after_terminal += r.claims_after_terminal;
    tally.escrow_milli += r.settlement_escrow_milli;
    tally.paid_milli += r.settlement_paid_milli;
    tally.refunded_milli += r.settlement_refunded_milli;
  }

  std::cout << "chaos settlement sweep: " << tally.schedules << " schedules, "
            << tally.closed << " closed / " << tally.abandoned << " abandoned ("
            << tally.prorata << " pro-rata) / " << tally.expired << " expired; "
            << tally.claims_submitted << " claims (" << tally.claims_lost << " lost, "
            << tally.claims_rejected << " rejected, " << tally.claims_after_terminal
            << " after-terminal); all invariants held\n";
  write_json(tally);
  return 0;
}
