// Chaos sweep for the crash-tolerant settlement lifecycle: hundreds of
// randomized, seeded fault schedules, each a full scenario whose settlement
// phase runs under a different mix of lost/delayed claims, initiator and
// forwarder crashes, deadlines — and (on most schedules) message-plane
// faults underneath. After every schedule the money-conservation invariants
// are checked exactly, in integer milli-credits:
//
//   C1  bank money + outstanding coins unchanged end to end;
//   C2  every settlement terminal (Closed | Abandoned | Expired), none open;
//   C3  escrow in == payouts + refunds (no residuals: every terminalisation
//       drains its escrow one way or the other);
//   C4  bank-side audit journal reconciles against node-side settlement
//       reports (replay rebuilds the bank state; per-account escrow payouts
//       and refund totals match the reports) — the double-pay detector;
//   C5  claims that raced past a terminal settlement were refused, and an
//       expired settlement refunded everything it took in.
//
// Any violated invariant names the schedule (its seed reproduces the run
// bit for bit) and exits non-zero, so the ctest `chaos` label is a gate.
//
//   ./chaos_settlement [seed] [schedules] [--adaptive] [--eps X]
//                      [--checkpoint PATH] (default 42, 200)
//
// The sweep runs through harness::AdaptiveRunner (DESIGN.md §3.12):
//  * --checkpoint persists the sweep state after every batch, so a killed
//    sweep resumes where it stopped and finishes with numerically identical
//    aggregates (relative paths land in $P2PANON_CSV_DIR);
//  * --adaptive stops the sweep once the anytime interval on the
//    closed-settlement share is within ±eps AND the Hoeffding lower bound
//    on the invariant pass rate clears its threshold — `schedules` stays
//    the hard cap, and any observed violation still aborts immediately.
//
// Phase 2 — the sharded settlement plane under the same chaos: randomized
// open / aggregated-claim / close / expire schedules driven directly against
// payment::ShardedSettlementPlane at B in {2, 3, 4} bank partitions, with
// lost aggregates, forged aggregate MACs and skipped closes. After every
// schedule the reconciliation pass asserts C1-C5 *per bank partition* (each
// partition is an independent money universe: conserved, all settlements
// terminal, escrows drained, journal replay + payouts match, expired
// refunds) AND globally after the merge (merged conservation, no receipt
// redeemed by two partitions). Any violation names the schedule and exits
// non-zero.
//
// Summary counters are written atomically to BENCH_chaos_settlement.json
// (in $P2PANON_CSV_DIR when set, else the cwd), including schedules-used
// vs schedules-planned for both phases.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "harness/adaptive.hpp"
#include "harness/checkpoint.hpp"
#include "harness/scenario.hpp"
#include "payment/sharded_settlement.hpp"
#include "sim/rng.hpp"

namespace {

using namespace p2panon;

/// One randomized fault schedule. Every knob is drawn from the schedule's
/// own stream child, so schedule i of seed s is a fixed, replayable world.
harness::ScenarioConfig schedule_config(std::uint64_t seed, std::uint64_t index) {
  sim::rng::Stream draw = sim::rng::Stream(seed).child("chaos-schedule", index);

  harness::ScenarioConfig cfg;
  cfg.seed = seed * 1000003 + index;  // distinct scenario universe per schedule
  cfg.overlay.node_count = 16;
  cfg.overlay.degree = 4;
  cfg.pair_count = 5;
  cfg.connections_per_pair = 3;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(30.0);

  // Bank plane: always chaotic (this is the subject under test).
  cfg.fault.bank.claim_loss = draw.uniform(0.0, 0.5);
  cfg.fault.bank.claim_delay_mean = draw.uniform(0.0, sim::minutes(10.0));
  cfg.fault.bank.initiator_crash = draw.uniform(0.0, 0.6);
  cfg.fault.bank.forwarder_crash = draw.uniform(0.0, 0.4);
  cfg.fault.bank.claim_deadline = draw.uniform(sim::minutes(5.0), sim::minutes(30.0));
  cfg.fault.bank.close_after = draw.uniform(sim::minutes(1.0), sim::minutes(15.0));
  cfg.fault.bank.claim_spread = draw.uniform(30.0, sim::minutes(8.0));
  cfg.fault.bank.lifecycle = true;  // lifecycle on even if every draw above is ~0

  // Message/liveness plane underneath, on 3 of 4 schedules; the rest isolate
  // the bank plane on the synchronous data path.
  if (index % 4 != 3) {
    cfg.fault.link_loss = draw.uniform(0.0, 0.08);
    cfg.fault.delay_jitter = draw.uniform(0.0, 0.4);
    cfg.fault.crash_rate_per_hour = draw.uniform(0.0, 6.0);
    // Half of these worlds never let a crashed node back up.
    cfg.fault.crash_recovery_mean =
        draw.bernoulli(0.5) ? 0.0 : draw.uniform(sim::minutes(2.0), sim::minutes(15.0));
    cfg.fault.probe_false_negative = draw.uniform(0.0, 0.15);
    cfg.async_setup.attempt_deadline = sim::minutes(3.0);
    cfg.data_phase.duration = 60.0;
    cfg.data_phase.keepalive_interval = 10.0;
  }
  return cfg;
}

// The AdaptiveRunner metric columns, in order. The first two gate early
// stopping; the kSum counters are exact totals for the JSON artifact.
enum Column : std::size_t {
  kInvariants = 0,  // pass-rate gate (always 1.0 — violations abort)
  kClosedShare,     // mean gate: closed settlements / pairs per schedule
  kClosed,
  kAbandoned,
  kExpired,
  kProrata,
  kClaimsSubmitted,
  kClaimsLost,
  kClaimsRejected,
  kClaimsAfterTerminal,
  kEscrowMilli,
  kPaidMilli,
  kRefundedMilli,
  kColumnCount,
};

std::vector<harness::MetricSpec> chaos_specs() {
  using Kind = harness::MetricSpec::Kind;
  std::vector<harness::MetricSpec> specs(kColumnCount);
  // An anytime-valid >= 80% lower bound on the invariant pass rate is
  // certifiable within a few hundred schedules; a single observed violation
  // aborts the whole sweep regardless, so the observed rate is always 1.
  specs[kInvariants] = {"invariants", Kind::kPassRate, 0.0, false, 0.8};
  specs[kClosedShare] = {"closed_share", Kind::kMean, 0.0, false, 0.0};
  const char* sums[] = {"closed",         "abandoned",      "expired",
                        "prorata",        "claims_submitted", "claims_lost",
                        "claims_rejected", "claims_after_terminal", "escrow_milli",
                        "paid_milli",     "refunded_milli"};
  for (std::size_t i = 0; i < std::size(sums); ++i) {
    specs[kClosed + i] = {sums[i], Kind::kSum, 0.0, false, 0.0};
  }
  return specs;
}

// --- Phase 2: the sharded settlement plane under chaos ---------------------

enum PlaneColumn : std::size_t {
  kPlaneInvariants = 0,  // pass-rate gate (violations abort)
  kPlaneClosedShare,
  kPlaneClosed,
  kPlaneAbandoned,
  kPlaneExpired,
  kPlaneProrata,
  kPlaneAggregates,
  kPlaneAggregatesRefused,
  kPlaneReceipts,
  kPlaneEscrowMilli,
  kPlanePaidMilli,
  kPlaneRefundedMilli,
  kPlaneColumnCount,
};

std::vector<harness::MetricSpec> plane_specs() {
  using Kind = harness::MetricSpec::Kind;
  std::vector<harness::MetricSpec> specs(kPlaneColumnCount);
  specs[kPlaneInvariants] = {"plane_invariants", Kind::kPassRate, 0.0, false, 0.8};
  specs[kPlaneClosedShare] = {"plane_closed_share", Kind::kMean, 0.0, false, 0.0};
  const char* sums[] = {"closed",     "abandoned", "expired",      "prorata",
                        "aggregates", "refused",   "receipts",     "escrow_milli",
                        "paid_milli", "refunded_milli"};
  for (std::size_t i = 0; i < std::size(sums); ++i) {
    specs[kPlaneClosed + i] = {sums[i], Kind::kSum, 0.0, false, 0.0};
  }
  return specs;
}

/// One randomized schedule against the plane itself: B in {2, 3, 4} bank
/// partitions, a dozen settlements with random paths, lost aggregates,
/// forged aggregate MACs, skipped closes, then the deadline sweep and the
/// merge reconciliation. Asserts C1-C5 per bank partition AND globally.
std::vector<double> run_plane_schedule(std::uint64_t seed, std::size_t index) {
  using namespace p2panon::payment;
  sim::rng::Stream draw = sim::rng::Stream(seed).child("plane-schedule", index);
  const std::uint32_t partitions = 2 + static_cast<std::uint32_t>(index % 3);
  constexpr std::size_t kNodes = 12;
  constexpr std::size_t kSettlements = 12;
  const Amount p_f = from_credits(10.0);
  const Amount p_r = from_credits(20.0);

  ShardedSettlementPlane plane(partitions, kNodes, from_credits(1000.0),
                               sim::rng::Stream(seed).child("plane-bank", index));
  auto fail = [&](const char* what, std::uint32_t part) {
    std::cerr << "plane schedule " << index << " (seed " << seed << ", B = " << partitions
              << "): " << what;
    if (part != UINT32_MAX) std::cerr << " in partition " << part;
    std::cerr << "\n";
    std::exit(1);
  };

  std::uint64_t closed = 0;
  for (std::size_t s = 0; s < kSettlements; ++s) {
    const auto key = static_cast<SettlementKey>(index * 1000 + s);
    const auto pair = static_cast<net::PairId>(s);
    const auto initiator = static_cast<net::NodeId>(draw.uniform_int(0, kNodes - 1));
    const auto responder = static_cast<net::NodeId>((initiator + 1) % kNodes);

    // 1-3 connections, each through 1-3 distinct forwarders.
    std::vector<PathRecord> records;
    std::vector<std::pair<net::NodeId, ForwardReceipt>> receipts;
    const auto conns = static_cast<std::uint32_t>(draw.uniform_int(1, 3));
    std::size_t instances = 0;
    for (std::uint32_t j = 0; j < conns; ++j) {
      const std::size_t hops = static_cast<std::size_t>(draw.uniform_int(1, 3));
      std::vector<net::NodeId> path{initiator};
      for (const std::size_t pick : draw.sample_indices(kNodes - 2, hops)) {
        // Map picks onto nodes \ {initiator, responder}.
        auto v = static_cast<net::NodeId>(pick);
        if (v >= std::min(initiator, responder)) ++v;
        if (v >= std::max(initiator, responder)) ++v;
        path.push_back(v);
      }
      path.push_back(responder);
      records.push_back(PathRecord{j, initiator, responder,
                                   {path.begin() + 1, path.end() - 1}});
      for (std::size_t h = 1; h + 1 < path.size(); ++h) {
        receipts.emplace_back(path[h], make_receipt(plane.mac_key_of(path[h]), pair, j,
                                                    path[h], path[h - 1], path[h + 1]));
        ++instances;
      }
    }

    const Amount escrow = static_cast<Amount>(instances) * p_f + p_r;
    const auto handle = plane.open_settlement(key, pair, initiator, escrow,
                                              SettlementTerms{p_f, p_r}, records,
                                              /*deadline=*/100.0);
    if (!handle.has_value()) fail("open_settlement refused a funded escrow", UINT32_MAX);

    // Aggregate per forwarder; lose ~30%, forge ~10% of aggregate MACs.
    for (net::NodeId fwd = 0; fwd < kNodes; ++fwd) {
      AggregatedClaim claim;
      claim.claimant = plane.account_of(fwd);
      claim.epoch = 0;
      for (const auto& [f, r] : receipts) {
        if (f == fwd) claim.receipts.push_back(r);
      }
      if (claim.receipts.empty() || draw.bernoulli(0.3)) continue;
      seal_aggregated_claim(plane.mac_key_of(fwd), key, claim);
      if (draw.bernoulli(0.1)) claim.aggregate_mac ^= 1;  // forged: refused whole
      (void)plane.submit_aggregated_claim(key, *handle, claim);
    }
    if (draw.bernoulli(0.6)) {
      plane.close_settlement(*handle);
      ++closed;
    }
  }
  (void)plane.expire_due(1000.0);

  const PlaneReconciliation rec = plane.reconcile();
  for (std::uint32_t b = 0; b < partitions; ++b) {
    const PartitionAudit& a = rec.partitions[b];
    if (!a.conserved) fail("C1: money + coins not conserved", b);
    if (!a.all_terminal) fail("C2: a settlement never terminalised", b);
    if (!a.escrows_drained) fail("C3: escrow in != payouts + refunds", b);
    if (!a.replay_ok || !a.payouts_match) fail("C4: journal does not reconcile", b);
    if (!a.expired_refunded) fail("C5: an expired settlement kept money", b);
  }
  if (!rec.global_conserved) fail("C1 (global): merged balances not conserved", UINT32_MAX);
  if (rec.cross_partition_replays != 0) {
    fail("C4 (global): a receipt was redeemed by two partitions", UINT32_MAX);
  }
  if (rec.expired > 0 && closed == kSettlements) {
    fail("C5 (global): expiries reported on an all-closed schedule", UINT32_MAX);
  }

  std::vector<double> row(kPlaneColumnCount, 0.0);
  row[kPlaneInvariants] = 1.0;
  row[kPlaneClosedShare] = static_cast<double>(rec.closed) / kSettlements;
  row[kPlaneClosed] = static_cast<double>(rec.closed);
  row[kPlaneAbandoned] = static_cast<double>(rec.abandoned);
  row[kPlaneExpired] = static_cast<double>(rec.expired);
  row[kPlaneProrata] = static_cast<double>(rec.prorata);
  row[kPlaneAggregates] = static_cast<double>(plane.aggregates_submitted());
  row[kPlaneAggregatesRefused] = static_cast<double>(plane.aggregates_refused());
  row[kPlaneReceipts] = static_cast<double>(plane.receipts_batched());
  row[kPlaneEscrowMilli] = static_cast<double>(rec.escrow_milli);
  row[kPlanePaidMilli] = static_cast<double>(rec.paid_milli);
  row[kPlaneRefundedMilli] = static_cast<double>(rec.refunded_milli);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // Chaotic schedules have high across-schedule variance (closed-share
  // s ~ 0.3): ±0.1 cannot close within the 200-schedule cap, ±0.12
  // certifies at 128 schedules (seed 42). Override with --eps.
  harness::AdaptiveConfig adaptive = bench::parse_sweep_options(argc, argv, 0.12);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::uint64_t schedules = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  auto run_schedule = [&](std::size_t i) {
    const harness::ScenarioConfig cfg = schedule_config(seed, i);
    const harness::ScenarioResult r = harness::ScenarioRunner(cfg).run();
    auto fail = [&](const char* what) {
      std::cerr << "chaos schedule " << i << " (seed " << seed << "): " << what << "\n";
      std::exit(1);
    };

    if (!r.payment_conserved) fail("C1: bank money + outstanding coins not conserved");
    const std::uint64_t terminal =
        r.settlements_closed + r.settlements_abandoned + r.settlements_expired;
    if (terminal != cfg.pair_count) fail("C2: a settlement never terminalised");
    if (r.settlement_escrow_milli != r.settlement_paid_milli + r.settlement_refunded_milli) {
      fail("C3: escrow in != payouts + refunds (residual money)");
    }
    if (!r.settlement_reconciled) fail("C4: audit journal does not reconcile with reports");
    if (r.settlements_expired > 0 && r.settlement_refunded_milli <= 0) {
      fail("C5: expired settlements must refund");
    }

    std::vector<double> row(kColumnCount, 0.0);
    row[kInvariants] = 1.0;  // reaching here means every invariant held
    row[kClosedShare] =
        static_cast<double>(r.settlements_closed) / static_cast<double>(cfg.pair_count);
    row[kClosed] = static_cast<double>(r.settlements_closed);
    row[kAbandoned] = static_cast<double>(r.settlements_abandoned);
    row[kExpired] = static_cast<double>(r.settlements_expired);
    row[kProrata] = static_cast<double>(r.settlements_prorata);
    row[kClaimsSubmitted] = static_cast<double>(r.claims_submitted);
    row[kClaimsLost] = static_cast<double>(r.claims_lost);
    row[kClaimsRejected] = static_cast<double>(r.claims_rejected);
    row[kClaimsAfterTerminal] = static_cast<double>(r.claims_after_terminal);
    row[kEscrowMilli] = static_cast<double>(r.settlement_escrow_milli);
    row[kPaidMilli] = static_cast<double>(r.settlement_paid_milli);
    row[kRefundedMilli] = static_cast<double>(r.settlement_refunded_milli);
    return row;
  };

  // Schedules run serially (a violation must abort deterministically at the
  // first failing schedule index).
  harness::AdaptiveRunner runner(adaptive, chaos_specs());
  std::uint64_t fp = harness::fnv1a_bytes(harness::fnv1a_init(), "chaos_settlement");
  fp = harness::fnv1a_mix(fp, seed);
  const harness::AdaptiveCellResult cell =
      runner.run_cell("sweep", fp, schedules, run_schedule, nullptr);

  const auto total = [&](Column c) {
    return static_cast<std::int64_t>(cell.sums[c]);
  };
  std::cout << "chaos settlement sweep: " << cell.outcome.replicates_used << "/"
            << cell.outcome.replicates_planned << " schedules"
            << (cell.outcome.stopped_early ? " (stopped early)" : "")
            << (cell.outcome.resumed ? " (resumed)" : "") << ", " << total(kClosed)
            << " closed / " << total(kAbandoned) << " abandoned (" << total(kProrata)
            << " pro-rata) / " << total(kExpired) << " expired; " << total(kClaimsSubmitted)
            << " claims (" << total(kClaimsLost) << " lost, " << total(kClaimsRejected)
            << " rejected, " << total(kClaimsAfterTerminal)
            << " after-terminal); all invariants held\n";

  // Phase 2: the sharded settlement plane under its own chaos schedules.
  harness::AdaptiveRunner plane_runner(adaptive, plane_specs());
  std::uint64_t plane_fp = harness::fnv1a_bytes(harness::fnv1a_init(), "chaos_plane");
  plane_fp = harness::fnv1a_mix(plane_fp, seed);
  const harness::AdaptiveCellResult plane_cell = plane_runner.run_cell(
      "plane", plane_fp, schedules, [&](std::size_t i) { return run_plane_schedule(seed, i); },
      nullptr);
  const auto plane_total = [&](PlaneColumn c) {
    return static_cast<std::int64_t>(plane_cell.sums[c]);
  };
  std::cout << "chaos plane sweep: " << plane_cell.outcome.replicates_used << "/"
            << plane_cell.outcome.replicates_planned << " schedules (B in {2, 3, 4}), "
            << plane_total(kPlaneClosed) << " closed / " << plane_total(kPlaneAbandoned)
            << " abandoned (" << plane_total(kPlaneProrata) << " pro-rata) / "
            << plane_total(kPlaneExpired) << " expired; " << plane_total(kPlaneAggregates)
            << " aggregates (" << plane_total(kPlaneAggregatesRefused) << " refused) over "
            << plane_total(kPlaneReceipts)
            << " receipts; C1-C5 held in every partition and globally\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"schedules\": " << cell.outcome.replicates_used << ",\n"
       << "  \"settlements_closed\": " << total(kClosed) << ",\n"
       << "  \"settlements_abandoned\": " << total(kAbandoned) << ",\n"
       << "  \"settlements_expired\": " << total(kExpired) << ",\n"
       << "  \"settlements_prorata\": " << total(kProrata) << ",\n"
       << "  \"claims_submitted\": " << total(kClaimsSubmitted) << ",\n"
       << "  \"claims_lost\": " << total(kClaimsLost) << ",\n"
       << "  \"claims_rejected\": " << total(kClaimsRejected) << ",\n"
       << "  \"claims_after_terminal\": " << total(kClaimsAfterTerminal) << ",\n"
       << "  \"escrow_milli\": " << total(kEscrowMilli) << ",\n"
       << "  \"paid_milli\": " << total(kPaidMilli) << ",\n"
       << "  \"refunded_milli\": " << total(kRefundedMilli) << ",\n"
       << "  \"conserved\": true,\n"
       << "  \"reconciled\": true,\n"
       << "  \"adaptive\": " << (adaptive.adaptive ? "true" : "false") << ",\n"
       << "  \"eps\": " << adaptive.eps << ",\n"
       << "  " << bench::adaptive_json_fields(cell.outcome) << ",\n"
       << "  \"plane\": {\n"
       << "    \"schedules\": " << plane_cell.outcome.replicates_used << ",\n"
       << "    \"settlements_closed\": " << plane_total(kPlaneClosed) << ",\n"
       << "    \"settlements_abandoned\": " << plane_total(kPlaneAbandoned) << ",\n"
       << "    \"settlements_expired\": " << plane_total(kPlaneExpired) << ",\n"
       << "    \"settlements_prorata\": " << plane_total(kPlaneProrata) << ",\n"
       << "    \"aggregates_submitted\": " << plane_total(kPlaneAggregates) << ",\n"
       << "    \"aggregates_refused\": " << plane_total(kPlaneAggregatesRefused) << ",\n"
       << "    \"receipts_batched\": " << plane_total(kPlaneReceipts) << ",\n"
       << "    \"escrow_milli\": " << plane_total(kPlaneEscrowMilli) << ",\n"
       << "    \"paid_milli\": " << plane_total(kPlanePaidMilli) << ",\n"
       << "    \"refunded_milli\": " << plane_total(kPlaneRefundedMilli) << ",\n"
       << "    \"conserved_per_partition_and_globally\": true,\n"
       << "    " << bench::adaptive_json_fields(plane_cell.outcome) << "\n"
       << "  }\n"
       << "}\n";
  bench::write_bench_json("BENCH_chaos_settlement.json", json.str());
  return 0;
}
