// Chaos sweep for the crash-tolerant settlement lifecycle: hundreds of
// randomized, seeded fault schedules, each a full scenario whose settlement
// phase runs under a different mix of lost/delayed claims, initiator and
// forwarder crashes, deadlines — and (on most schedules) message-plane
// faults underneath. After every schedule the money-conservation invariants
// are checked exactly, in integer milli-credits:
//
//   C1  bank money + outstanding coins unchanged end to end;
//   C2  every settlement terminal (Closed | Abandoned | Expired), none open;
//   C3  escrow in == payouts + refunds (no residuals: every terminalisation
//       drains its escrow one way or the other);
//   C4  bank-side audit journal reconciles against node-side settlement
//       reports (replay rebuilds the bank state; per-account escrow payouts
//       and refund totals match the reports) — the double-pay detector;
//   C5  claims that raced past a terminal settlement were refused, and an
//       expired settlement refunded everything it took in.
//
// Any violated invariant names the schedule (its seed reproduces the run
// bit for bit) and exits non-zero, so the ctest `chaos` label is a gate.
//
//   ./chaos_settlement [seed] [schedules] [--adaptive] [--eps X]
//                      [--checkpoint PATH] (default 42, 200)
//
// The sweep runs through harness::AdaptiveRunner (DESIGN.md §3.12):
//  * --checkpoint persists the sweep state after every batch, so a killed
//    sweep resumes where it stopped and finishes with numerically identical
//    aggregates (relative paths land in $P2PANON_CSV_DIR);
//  * --adaptive stops the sweep once the anytime interval on the
//    closed-settlement share is within ±eps AND the Hoeffding lower bound
//    on the invariant pass rate clears its threshold — `schedules` stays
//    the hard cap, and any observed violation still aborts immediately.
//
// Summary counters are written atomically to BENCH_chaos_settlement.json
// (in $P2PANON_CSV_DIR when set, else the cwd), including schedules-used
// vs schedules-planned.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "harness/adaptive.hpp"
#include "harness/checkpoint.hpp"
#include "harness/scenario.hpp"
#include "sim/rng.hpp"

namespace {

using namespace p2panon;

/// One randomized fault schedule. Every knob is drawn from the schedule's
/// own stream child, so schedule i of seed s is a fixed, replayable world.
harness::ScenarioConfig schedule_config(std::uint64_t seed, std::uint64_t index) {
  sim::rng::Stream draw = sim::rng::Stream(seed).child("chaos-schedule", index);

  harness::ScenarioConfig cfg;
  cfg.seed = seed * 1000003 + index;  // distinct scenario universe per schedule
  cfg.overlay.node_count = 16;
  cfg.overlay.degree = 4;
  cfg.pair_count = 5;
  cfg.connections_per_pair = 3;
  cfg.warmup = sim::minutes(20.0);
  cfg.pair_start_window = sim::minutes(30.0);

  // Bank plane: always chaotic (this is the subject under test).
  cfg.fault.bank.claim_loss = draw.uniform(0.0, 0.5);
  cfg.fault.bank.claim_delay_mean = draw.uniform(0.0, sim::minutes(10.0));
  cfg.fault.bank.initiator_crash = draw.uniform(0.0, 0.6);
  cfg.fault.bank.forwarder_crash = draw.uniform(0.0, 0.4);
  cfg.fault.bank.claim_deadline = draw.uniform(sim::minutes(5.0), sim::minutes(30.0));
  cfg.fault.bank.close_after = draw.uniform(sim::minutes(1.0), sim::minutes(15.0));
  cfg.fault.bank.claim_spread = draw.uniform(30.0, sim::minutes(8.0));
  cfg.fault.bank.lifecycle = true;  // lifecycle on even if every draw above is ~0

  // Message/liveness plane underneath, on 3 of 4 schedules; the rest isolate
  // the bank plane on the synchronous data path.
  if (index % 4 != 3) {
    cfg.fault.link_loss = draw.uniform(0.0, 0.08);
    cfg.fault.delay_jitter = draw.uniform(0.0, 0.4);
    cfg.fault.crash_rate_per_hour = draw.uniform(0.0, 6.0);
    // Half of these worlds never let a crashed node back up.
    cfg.fault.crash_recovery_mean =
        draw.bernoulli(0.5) ? 0.0 : draw.uniform(sim::minutes(2.0), sim::minutes(15.0));
    cfg.fault.probe_false_negative = draw.uniform(0.0, 0.15);
    cfg.async_setup.attempt_deadline = sim::minutes(3.0);
    cfg.data_phase.duration = 60.0;
    cfg.data_phase.keepalive_interval = 10.0;
  }
  return cfg;
}

// The AdaptiveRunner metric columns, in order. The first two gate early
// stopping; the kSum counters are exact totals for the JSON artifact.
enum Column : std::size_t {
  kInvariants = 0,  // pass-rate gate (always 1.0 — violations abort)
  kClosedShare,     // mean gate: closed settlements / pairs per schedule
  kClosed,
  kAbandoned,
  kExpired,
  kProrata,
  kClaimsSubmitted,
  kClaimsLost,
  kClaimsRejected,
  kClaimsAfterTerminal,
  kEscrowMilli,
  kPaidMilli,
  kRefundedMilli,
  kColumnCount,
};

std::vector<harness::MetricSpec> chaos_specs() {
  using Kind = harness::MetricSpec::Kind;
  std::vector<harness::MetricSpec> specs(kColumnCount);
  // An anytime-valid >= 80% lower bound on the invariant pass rate is
  // certifiable within a few hundred schedules; a single observed violation
  // aborts the whole sweep regardless, so the observed rate is always 1.
  specs[kInvariants] = {"invariants", Kind::kPassRate, 0.0, false, 0.8};
  specs[kClosedShare] = {"closed_share", Kind::kMean, 0.0, false, 0.0};
  const char* sums[] = {"closed",         "abandoned",      "expired",
                        "prorata",        "claims_submitted", "claims_lost",
                        "claims_rejected", "claims_after_terminal", "escrow_milli",
                        "paid_milli",     "refunded_milli"};
  for (std::size_t i = 0; i < std::size(sums); ++i) {
    specs[kClosed + i] = {sums[i], Kind::kSum, 0.0, false, 0.0};
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  // Chaotic schedules have high across-schedule variance (closed-share
  // s ~ 0.3): ±0.1 cannot close within the 200-schedule cap, ±0.12
  // certifies at 128 schedules (seed 42). Override with --eps.
  harness::AdaptiveConfig adaptive = bench::parse_sweep_options(argc, argv, 0.12);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::uint64_t schedules = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  auto run_schedule = [&](std::size_t i) {
    const harness::ScenarioConfig cfg = schedule_config(seed, i);
    const harness::ScenarioResult r = harness::ScenarioRunner(cfg).run();
    auto fail = [&](const char* what) {
      std::cerr << "chaos schedule " << i << " (seed " << seed << "): " << what << "\n";
      std::exit(1);
    };

    if (!r.payment_conserved) fail("C1: bank money + outstanding coins not conserved");
    const std::uint64_t terminal =
        r.settlements_closed + r.settlements_abandoned + r.settlements_expired;
    if (terminal != cfg.pair_count) fail("C2: a settlement never terminalised");
    if (r.settlement_escrow_milli != r.settlement_paid_milli + r.settlement_refunded_milli) {
      fail("C3: escrow in != payouts + refunds (residual money)");
    }
    if (!r.settlement_reconciled) fail("C4: audit journal does not reconcile with reports");
    if (r.settlements_expired > 0 && r.settlement_refunded_milli <= 0) {
      fail("C5: expired settlements must refund");
    }

    std::vector<double> row(kColumnCount, 0.0);
    row[kInvariants] = 1.0;  // reaching here means every invariant held
    row[kClosedShare] =
        static_cast<double>(r.settlements_closed) / static_cast<double>(cfg.pair_count);
    row[kClosed] = static_cast<double>(r.settlements_closed);
    row[kAbandoned] = static_cast<double>(r.settlements_abandoned);
    row[kExpired] = static_cast<double>(r.settlements_expired);
    row[kProrata] = static_cast<double>(r.settlements_prorata);
    row[kClaimsSubmitted] = static_cast<double>(r.claims_submitted);
    row[kClaimsLost] = static_cast<double>(r.claims_lost);
    row[kClaimsRejected] = static_cast<double>(r.claims_rejected);
    row[kClaimsAfterTerminal] = static_cast<double>(r.claims_after_terminal);
    row[kEscrowMilli] = static_cast<double>(r.settlement_escrow_milli);
    row[kPaidMilli] = static_cast<double>(r.settlement_paid_milli);
    row[kRefundedMilli] = static_cast<double>(r.settlement_refunded_milli);
    return row;
  };

  // Schedules run serially (a violation must abort deterministically at the
  // first failing schedule index).
  harness::AdaptiveRunner runner(adaptive, chaos_specs());
  std::uint64_t fp = harness::fnv1a_bytes(harness::fnv1a_init(), "chaos_settlement");
  fp = harness::fnv1a_mix(fp, seed);
  const harness::AdaptiveCellResult cell =
      runner.run_cell("sweep", fp, schedules, run_schedule, nullptr);

  const auto total = [&](Column c) {
    return static_cast<std::int64_t>(cell.sums[c]);
  };
  std::cout << "chaos settlement sweep: " << cell.outcome.replicates_used << "/"
            << cell.outcome.replicates_planned << " schedules"
            << (cell.outcome.stopped_early ? " (stopped early)" : "")
            << (cell.outcome.resumed ? " (resumed)" : "") << ", " << total(kClosed)
            << " closed / " << total(kAbandoned) << " abandoned (" << total(kProrata)
            << " pro-rata) / " << total(kExpired) << " expired; " << total(kClaimsSubmitted)
            << " claims (" << total(kClaimsLost) << " lost, " << total(kClaimsRejected)
            << " rejected, " << total(kClaimsAfterTerminal)
            << " after-terminal); all invariants held\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"schedules\": " << cell.outcome.replicates_used << ",\n"
       << "  \"settlements_closed\": " << total(kClosed) << ",\n"
       << "  \"settlements_abandoned\": " << total(kAbandoned) << ",\n"
       << "  \"settlements_expired\": " << total(kExpired) << ",\n"
       << "  \"settlements_prorata\": " << total(kProrata) << ",\n"
       << "  \"claims_submitted\": " << total(kClaimsSubmitted) << ",\n"
       << "  \"claims_lost\": " << total(kClaimsLost) << ",\n"
       << "  \"claims_rejected\": " << total(kClaimsRejected) << ",\n"
       << "  \"claims_after_terminal\": " << total(kClaimsAfterTerminal) << ",\n"
       << "  \"escrow_milli\": " << total(kEscrowMilli) << ",\n"
       << "  \"paid_milli\": " << total(kPaidMilli) << ",\n"
       << "  \"refunded_milli\": " << total(kRefundedMilli) << ",\n"
       << "  \"conserved\": true,\n"
       << "  \"reconciled\": true,\n"
       << "  \"adaptive\": " << (adaptive.adaptive ? "true" : "false") << ",\n"
       << "  \"eps\": " << adaptive.eps << ",\n"
       << "  " << bench::adaptive_json_fields(cell.outcome) << "\n"
       << "}\n";
  bench::write_bench_json("BENCH_chaos_settlement.json", json.str());
  return 0;
}
