// Quickstart: the smallest end-to-end use of the library.
//
// Builds the paper's simulation world (overlay + churn + probing + bank),
// runs one recurring connection set between an initiator and a responder
// under Utility Model I, settles the payments, and prints what happened —
// a runnable version of the paper's Figures 1-2 walkthrough.
//
//   ./quickstart [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "net/probing.hpp"
#include "payment/settlement.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace p2panon;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::rng::Stream root(seed);

  // --- 1. A 40-node overlay with the paper's churn model (Pareto sessions,
  // median 60 min) and degree-5 neighbour sets.
  sim::Simulator simulator;
  net::OverlayConfig ocfg;
  ocfg.node_count = 40;
  ocfg.degree = 5;
  net::Overlay overlay(ocfg, simulator, root.child("overlay"));

  // --- 2. Availability estimation by active probing (paper §2.3) and
  // empty per-node connection histories.
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});

  // --- 3. A bank where every peer holds an account and registers the MAC
  // key it will use on forwarding receipts.
  payment::Bank bank(root.child("bank"));
  payment::SettlementEngine engine(bank);
  auto keys = root.child("keys");
  for (net::NodeId id = 0; id < overlay.size(); ++id) {
    bank.open_account(id, payment::from_credits(100000.0), keys.next_u64());
  }

  // --- 4. Let the overlay churn for an hour so probing has observations.
  overlay.start();
  simulator.run_until(sim::minutes(60.0));
  std::cout << "overlay warmed up: " << overlay.online_nodes().size() << "/40 nodes online, "
            << probing.probes_performed() << " probes performed\n";

  // --- 5. A recurring connection set: initiator 0 -> responder 39, 20
  // connections, contract P_f = 75, tau = 2 (so P_r = 150).
  const net::NodeId initiator = 0, responder = 39;
  core::Contract contract;
  contract.forwarding_benefit = 75.0;
  contract.tau = 2.0;
  core::ConnectionSetSession session(/*pair=*/0, initiator, responder, contract);

  core::UtilityModelIRouting good_strategy;
  core::StrategyAssignment strategies(overlay, good_strategy);
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());

  auto stream = root.child("session");
  for (std::uint32_t k = 1; k <= 20; ++k) {
    simulator.run_until(simulator.now() + sim::minutes(5.0));
    overlay.force_online(initiator);
    overlay.force_online(responder);
    const core::BuiltPath& path =
        session.run_connection(builder, history, strategies, ledger, overlay, stream);
    std::cout << "connection " << k << ": path";
    for (net::NodeId n : path.nodes) std::cout << ' ' << n;
    std::cout << "  (||pi|| so far: " << session.forwarder_set().size() << ")\n";
  }

  // --- 6. Settle: the initiator funds an escrow with blind coins, opens a
  // settlement with its validated path records, forwarders claim with MAC'd
  // receipts, the bank pays m*P_f + P_r/||pi|| each.
  auto settle_stream = root.child("settle");
  const core::SettleOutcome out = session.settle(bank, engine, ledger, overlay, settle_stream);

  std::cout << "\nsettled: ||pi|| = " << out.forwarder_set_size
            << ", avg path length L = " << session.average_path_length()
            << ", path quality Q(pi) = L/||pi|| = " << session.path_quality() << '\n'
            << "initiator paid " << out.initiator_spend << " credits; "
            << out.report.accepted_claims << " forwarding instances claimed, "
            << out.report.refunded << " milli-credits refunded\n";

  std::cout << "\nper-forwarder payoffs (benefit - cost):\n";
  std::vector<net::NodeId> forwarders(session.forwarder_set().begin(),
                                      session.forwarder_set().end());
  std::sort(forwarders.begin(), forwarders.end());
  for (net::NodeId id : forwarders) {
    std::cout << "  node " << id << ": " << ledger.at(id).payoff() << " credits over "
              << ledger.at(id).forwarding_instances << " instances\n";
  }
  return 0;
}
