// Payment-system example: the anonymity-preserving payment flow (paper §2.2
// and §5), including every cheating scenario the settlement engine defends
// against.
//
//   ./payment_walkthrough
#include <iostream>

#include "payment/settlement.hpp"
#include "payment/token.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::payment;
  sim::rng::Stream root(2026);

  Bank bank(root.child("bank"));
  SettlementEngine engine(bank);

  // Peers 0..4 open accounts; node 0 will be the (anonymous) initiator and
  // node 4 the responder. Each account registers a receipt-MAC key.
  std::vector<AccountId> acct;
  auto keys = root.child("keys");
  for (net::NodeId n = 0; n < 5; ++n) {
    acct.push_back(bank.open_account(n, from_credits(1000.0), keys.next_u64()));
  }

  std::cout << "== 1. Blind withdrawal ==\n";
  Wallet wallet(bank, acct[0], root.child("wallet"));
  const Amount p_f = from_credits(10.0), p_r = from_credits(20.0);
  const Amount committed = 4 * p_f + p_r;  // 4 expected instances + P_r
  auto coins = wallet.withdraw(committed);
  std::cout << "initiator withdrew " << coins->size() << " coins totalling "
            << to_credits(committed) << " credits; the bank signed each coin BLIND,\n"
            << "so deposited coins cannot be linked back to the initiator's account.\n\n";

  std::cout << "== 2. Escrow funding ==\n";
  auto escrow = bank.open_escrow(*coins);
  std::cout << "escrow " << *escrow << " funded with " << to_credits(bank.escrow_balance(*escrow))
            << " credits (coins now marked spent: double-spending them fails)\n";
  Coin replayed = coins->front();
  std::cout << "replaying a funding coin as a deposit -> "
            << (bank.deposit_coin(acct[1], replayed) == DepositResult::kDoubleSpend
                    ? "rejected as double spend"
                    : "ACCEPTED (bug!)")
            << "\n\n";

  std::cout << "== 3. Settlement with receipts ==\n";
  // Two recorded connections: 0 -> 1 -> 2 -> 4 and 0 -> 1 -> 3 -> 4.
  std::vector<PathRecord> records{{1, 0, 4, {1, 2}}, {2, 0, 4, {1, 3}}};
  const AccountId refund = bank.open_pseudonymous_account();
  const SettlementId sid = engine.open(9, *escrow, {p_f, p_r}, records, refund);
  std::cout << "settlement opened; recorded forwarder set ||pi|| = "
            << engine.forwarder_set_size(sid) << "\n";

  auto claim = [&](net::NodeId fwd, std::uint32_t conn, net::NodeId pred, net::NodeId succ) {
    const ForwardReceipt r =
        make_receipt(bank.account_mac_key(acct[fwd]), 9, conn, fwd, pred, succ);
    return engine.submit_claim(sid, acct[fwd], r);
  };
  std::cout << "node 1 claims conn 1 hop: " << (claim(1, 1, 0, 2) == ClaimResult::kAccepted)
            << ", conn 2 hop: " << (claim(1, 2, 0, 3) == ClaimResult::kAccepted) << '\n';
  std::cout << "node 2 claims conn 1 hop: " << (claim(2, 1, 1, 4) == ClaimResult::kAccepted)
            << ", node 3 claims conn 2 hop: " << (claim(3, 2, 1, 4) == ClaimResult::kAccepted)
            << "\n\n";

  std::cout << "== 4. Cheating attempts ==\n";
  // (a) Over-claim: node 3 invents a hop it never forwarded.
  std::cout << "over-claim (node 3, fake hop)      -> "
            << (claim(3, 1, 0, 4) == ClaimResult::kNotOnPath ? "rejected (not on path)" : "?!")
            << '\n';
  // (b) Replay: node 1 resubmits an already-paid receipt.
  std::cout << "replay (node 1, same receipt)      -> "
            << (claim(1, 1, 0, 2) == ClaimResult::kDuplicate ? "rejected (duplicate)" : "?!")
            << '\n';
  // (c) Theft: node 2 tries to redeem node 1's receipt.
  const ForwardReceipt stolen =
      make_receipt(bank.account_mac_key(acct[1]), 9, 1, 1, 0, 2);
  std::cout << "theft (node 2 redeems node 1's)    -> "
            << (engine.submit_claim(sid, acct[2], stolen) == ClaimResult::kWrongClaimant
                    ? "rejected (wrong claimant)"
                    : "?!")
            << '\n';
  // (d) Forgery: node 3 MACs a fake hop with a guessed key.
  ForwardReceipt forged{9, 1, 3, 0, 4, 0xDEADBEEF};
  std::cout << "forgery (bad MAC)                  -> "
            << (engine.submit_claim(sid, acct[3], forged) == ClaimResult::kBadMac
                    ? "rejected (bad MAC)"
                    : "?!")
            << '\n';
  // (e) Initiator refusal: impossible by construction — the escrow was
  // funded before forwarding began, and close() pays from it directly.
  std::cout << "initiator refusal                  -> impossible: escrow pre-funded\n\n";

  std::cout << "== 5. Close and audit ==\n";
  const Amount before = bank.total_money() + bank.outstanding_coin_value();
  const SettlementReport& report = engine.close(sid);
  const Amount after = bank.total_money() + bank.outstanding_coin_value();
  std::cout << "paid out " << to_credits(report.paid_out) << " credits over "
            << report.accepted_claims << " instances; refunded " << to_credits(report.refunded)
            << "; rejected claims: " << report.rejected_claims << '\n';
  std::cout << "money conservation: " << (before == after ? "exact" : "VIOLATED") << '\n';
  for (net::NodeId n = 1; n <= 3; ++n) {
    std::cout << "  node " << n << " balance: " << to_credits(bank.balance(acct[n]))
              << " credits\n";
  }
  return 0;
}
